//! Per-run reporting: what every portfolio worker did, and when.

use crate::cache::CacheCounters;
use crate::json::{obj, Value};
use std::time::Duration;

/// How the solution cache participated in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// No cache directory was configured.
    Disabled,
    /// The problem was not in the cache.
    Miss,
    /// An optimal entry was found: the run was served without solving.
    HitOptimal,
    /// A best-so-far (non-optimal) entry was found and used as the
    /// portfolio's warm start; the solvers still ran.
    HitWarmStart,
    /// The same-size lookup missed, but a *smaller*-mode solution of the
    /// same family was found through the [`crate::cache::SizeIndex`] and
    /// embedded as the warm start; the solvers still ran.
    HitCrossSize,
}

impl CacheStatus {
    fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Disabled => "disabled",
            CacheStatus::Miss => "miss",
            CacheStatus::HitOptimal => "hit-optimal",
            CacheStatus::HitWarmStart => "hit-warm-start",
            CacheStatus::HitCrossSize => "hit-cross-size",
        }
    }
}

/// One timestamped event in a worker's life.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerEvent {
    /// Offset from the engine's start.
    pub at: Duration,
    /// What happened.
    pub kind: EventKind,
}

/// The event kinds a worker can log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Found an encoding of this weight (and published it to the shared
    /// incumbent).
    Improved(usize),
    /// Produced an UNSAT certificate: no encoding below this weight exists.
    ProvedFloor(usize),
    /// A per-call solver budget ran out (the worker may continue).
    BudgetExhausted,
    /// The worker was cancelled by the shared token.
    Cancelled,
    /// An annealing lane adopted a strictly better shared incumbent (of
    /// this weight) as its next starting point.
    Reseeded(usize),
    /// The lane's explicit phase hint failed validation and was rejected
    /// (the lane fell back to the Bravyi-Kitaev hint when configured).
    HintRejected,
}

impl EventKind {
    fn name(self) -> &'static str {
        match self {
            EventKind::Improved(_) => "improved",
            EventKind::ProvedFloor(_) => "proved-floor",
            EventKind::BudgetExhausted => "budget-exhausted",
            EventKind::Cancelled => "cancelled",
            EventKind::Reseeded(_) => "reseeded",
            EventKind::HintRejected => "hint-rejected",
        }
    }

    fn weight(self) -> Option<usize> {
        match self {
            EventKind::Improved(w) | EventKind::ProvedFloor(w) | EventKind::Reseeded(w) => Some(w),
            _ => None,
        }
    }

    /// Inverse of the JSON form ([`name`](Self::name) + optional weight).
    fn from_parts(name: &str, weight: Option<usize>) -> Option<EventKind> {
        Some(match (name, weight) {
            ("improved", Some(w)) => EventKind::Improved(w),
            ("proved-floor", Some(w)) => EventKind::ProvedFloor(w),
            ("reseeded", Some(w)) => EventKind::Reseeded(w),
            ("budget-exhausted", _) => EventKind::BudgetExhausted,
            ("cancelled", _) => EventKind::Cancelled,
            ("hint-rejected", _) => EventKind::HintRejected,
            _ => return None,
        })
    }
}

/// One worker's timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerReport {
    /// Strategy name (e.g. `sat-descent[seed=2,rb=0.05]`).
    pub strategy: String,
    /// Offset of the worker's start from the engine's start.
    pub started_at: Duration,
    /// Offset of the worker's exit from the engine's start.
    pub finished_at: Duration,
    /// Timestamped events.
    pub events: Vec<WorkerEvent>,
    /// The best weight this worker itself achieved.
    pub final_weight: Option<usize>,
    /// The strongest UNSAT floor this worker proved.
    pub proved_floor: Option<usize>,
    /// True when the worker exited through cancellation.
    pub cancelled: bool,
    /// Solver conflicts this lane spent (0 for non-SAT lanes).
    pub conflicts: u64,
    /// Learnt clauses this lane exported to the exchange.
    pub clauses_exported: u64,
    /// Foreign clauses this lane imported from the exchange.
    pub clauses_imported: u64,
    /// Imports first deferred by their bound tag, admitted later.
    pub clauses_promoted: u64,
    /// Times an imported clause became a propagation reason in this lane —
    /// the usefulness signal behind the import counters (an import that
    /// never propagates was not worth shipping).
    pub imported_reasons: u64,
    /// Unit propagations this lane performed (0 for non-SAT lanes).
    pub propagations: u64,
    /// Where the lane's adaptive export-LBD threshold ended up (0 for
    /// non-SAT lanes).
    pub adapted_export_lbd: u32,
    /// Worker process this lane ran in, for sharded runs (`None` = the
    /// coordinating process itself).
    pub shard: Option<usize>,
}

/// Bridge traffic and liveness of one worker process in a sharded run.
/// Counters are coordinator-side observations, so they stay meaningful
/// even when the worker was killed mid-race.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Lanes assigned to this shard.
    pub lanes: usize,
    /// Learnt clauses this shard sent over the bridge.
    pub clauses_sent: u64,
    /// Remote learnt clauses forwarded into this shard.
    pub clauses_received: u64,
    /// Incumbent-bound frames this shard sent.
    pub bounds_sent: u64,
    /// Incumbent-bound frames forwarded into this shard.
    pub bounds_received: u64,
    /// Frames dropped on the way *to* this shard because its bounded
    /// outbox was full (a slow peer sheds best-effort traffic instead
    /// of stalling the race).
    pub frames_dropped: u64,
    /// Times a fleet worker re-attached to this shard id mid-race
    /// (always 0 for pipe workers, which cannot reconnect).
    pub rejoins: u64,
    /// True when the worker process died (or broke protocol) before
    /// reporting a result; the race degrades to the surviving shards.
    pub dead: bool,
}

impl ShardReport {
    /// Machine-readable form.
    pub fn to_json(&self) -> Value {
        obj([
            ("shard", Value::Num(self.shard as f64)),
            ("lanes", Value::Num(self.lanes as f64)),
            ("clauses_sent", Value::Num(self.clauses_sent as f64)),
            ("clauses_received", Value::Num(self.clauses_received as f64)),
            ("bounds_sent", Value::Num(self.bounds_sent as f64)),
            ("bounds_received", Value::Num(self.bounds_received as f64)),
            ("frames_dropped", Value::Num(self.frames_dropped as f64)),
            ("rejoins", Value::Num(self.rejoins as f64)),
            ("dead", Value::Bool(self.dead)),
        ])
    }
}

/// How a run's opening incumbent was obtained before any lane ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarmStartReport {
    /// Where the starting encoding came from: `"cache-entry"` (same-size
    /// best-so-far entry), `"cross-size"` (a smaller cached optimum
    /// lifted through [`encodings::embed`]), or `"config"` (a
    /// caller-supplied hint, e.g. the shard coordinator's broadcast).
    pub source: String,
    /// Mode count of the source solution when it differs from the
    /// problem's (cross-size transfer).
    pub from_modes: Option<usize>,
    /// Weight of the (possibly embedded) starting encoding under the
    /// problem's own objective — the race's opening incumbent.
    pub weight: usize,
}

impl WarmStartReport {
    /// Machine-readable form (also embedded in the server's compile
    /// response as the `warm_start` field).
    pub fn to_json(&self) -> Value {
        obj([
            ("source", Value::Str(self.source.clone())),
            (
                "from_modes",
                self.from_modes
                    .map_or(Value::Null, |m| Value::Num(m as f64)),
            ),
            ("weight", Value::Num(self.weight as f64)),
        ])
    }
}

/// The full run report.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Hex fingerprint of the compiled problem.
    pub fingerprint: String,
    /// Wall-clock time of the whole run.
    pub total_elapsed: Duration,
    /// How the cache participated.
    pub cache: CacheStatus,
    /// Hit/miss/store/eviction counters of the cache handle this run used
    /// (all zero when caching is disabled).
    pub cache_counters: CacheCounters,
    /// Strategy name that produced the returned encoding.
    pub winner: Option<String>,
    /// The warm start the race opened with, when one was found (a
    /// same-size best-so-far entry, an embedded smaller solution, or a
    /// caller-supplied hint). `None` for cold runs and optimal cache
    /// hits.
    pub warm_start: Option<WarmStartReport>,
    /// Per-worker timelines (empty on a cache hit).
    pub workers: Vec<WorkerReport>,
    /// Per-worker-process bridge traffic for sharded runs (empty for
    /// in-process races).
    pub shards: Vec<ShardReport>,
}

impl EngineReport {
    /// Machine-readable form (the benchmark harness writes these into
    /// `BENCH_engine.json`).
    pub fn to_json(&self) -> Value {
        obj([
            ("fingerprint", Value::Str(self.fingerprint.clone())),
            (
                "total_seconds",
                Value::Num(self.total_elapsed.as_secs_f64()),
            ),
            ("cache", Value::Str(self.cache.as_str().to_string())),
            (
                "cache_counters",
                obj([
                    (
                        "hit_optimal",
                        Value::Num(self.cache_counters.hit_optimal as f64),
                    ),
                    (
                        "hit_warm_start",
                        Value::Num(self.cache_counters.hit_warm_start as f64),
                    ),
                    (
                        "hit_cross_size",
                        Value::Num(self.cache_counters.hit_cross_size as f64),
                    ),
                    ("misses", Value::Num(self.cache_counters.misses as f64)),
                    ("stores", Value::Num(self.cache_counters.stores as f64)),
                    (
                        "evictions",
                        Value::Num(self.cache_counters.evictions as f64),
                    ),
                ]),
            ),
            (
                "winner",
                self.winner.clone().map_or(Value::Null, Value::Str),
            ),
            (
                "warm_start",
                self.warm_start
                    .as_ref()
                    .map_or(Value::Null, WarmStartReport::to_json),
            ),
            (
                "workers",
                Value::Arr(self.workers.iter().map(WorkerReport::to_json).collect()),
            ),
            (
                "shards",
                Value::Arr(self.shards.iter().map(ShardReport::to_json).collect()),
            ),
        ])
    }
}

impl WorkerReport {
    /// Machine-readable form (also the wire form a shard worker reports
    /// its lane timelines in).
    pub fn to_json(&self) -> Value {
        let w = self;
        obj([
            ("strategy", Value::Str(w.strategy.clone())),
            ("started_seconds", Value::Num(w.started_at.as_secs_f64())),
            ("finished_seconds", Value::Num(w.finished_at.as_secs_f64())),
            (
                "final_weight",
                w.final_weight.map_or(Value::Null, |v| Value::Num(v as f64)),
            ),
            (
                "proved_floor",
                w.proved_floor.map_or(Value::Null, |v| Value::Num(v as f64)),
            ),
            ("cancelled", Value::Bool(w.cancelled)),
            ("conflicts", Value::Num(w.conflicts as f64)),
            ("clauses_exported", Value::Num(w.clauses_exported as f64)),
            ("clauses_imported", Value::Num(w.clauses_imported as f64)),
            ("clauses_promoted", Value::Num(w.clauses_promoted as f64)),
            ("imported_reasons", Value::Num(w.imported_reasons as f64)),
            ("propagations", Value::Num(w.propagations as f64)),
            (
                "adapted_export_lbd",
                Value::Num(w.adapted_export_lbd as f64),
            ),
            (
                "shard",
                w.shard.map_or(Value::Null, |v| Value::Num(v as f64)),
            ),
            (
                "events",
                Value::Arr(
                    w.events
                        .iter()
                        .map(|e| {
                            obj([
                                ("at_seconds", Value::Num(e.at.as_secs_f64())),
                                ("kind", Value::Str(e.kind.name().to_string())),
                                (
                                    "weight",
                                    e.kind
                                        .weight()
                                        .map_or(Value::Null, |v| Value::Num(v as f64)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json) — the shard coordinator
    /// merges worker-process reports through this. `None` when required
    /// fields are missing or mistyped (a worker that died mid-write).
    pub fn from_json(doc: &Value) -> Option<WorkerReport> {
        let seconds = |v: &Value| {
            let s = v.as_f64()?;
            (s.is_finite() && s >= 0.0).then(|| Duration::from_secs_f64(s))
        };
        let events = doc
            .get("events")?
            .as_arr()?
            .iter()
            .map(|e| {
                let kind = EventKind::from_parts(
                    e.get("kind")?.as_str()?,
                    e.get("weight").and_then(Value::as_usize),
                )?;
                Some(WorkerEvent {
                    at: seconds(e.get("at_seconds")?)?,
                    kind,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(WorkerReport {
            strategy: doc.get("strategy")?.as_str()?.to_string(),
            started_at: seconds(doc.get("started_seconds")?)?,
            finished_at: seconds(doc.get("finished_seconds")?)?,
            events,
            final_weight: doc.get("final_weight").and_then(Value::as_usize),
            proved_floor: doc.get("proved_floor").and_then(Value::as_usize),
            cancelled: doc.get("cancelled")?.as_bool()?,
            conflicts: doc.get("conflicts")?.as_usize()? as u64,
            clauses_exported: doc.get("clauses_exported")?.as_usize()? as u64,
            clauses_imported: doc.get("clauses_imported")?.as_usize()? as u64,
            clauses_promoted: doc.get("clauses_promoted")?.as_usize()? as u64,
            // Tolerant: reports written before this counter existed parse
            // as zero rather than failing the merge.
            imported_reasons: doc
                .get("imported_reasons")
                .and_then(Value::as_usize)
                .unwrap_or(0) as u64,
            propagations: doc
                .get("propagations")
                .and_then(Value::as_usize)
                .unwrap_or(0) as u64,
            adapted_export_lbd: doc
                .get("adapted_export_lbd")
                .and_then(Value::as_usize)
                .unwrap_or(0) as u32,
            shard: doc.get("shard").and_then(Value::as_usize),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_to_parseable_json() {
        let report = EngineReport {
            fingerprint: "ab".repeat(32),
            total_elapsed: Duration::from_millis(1500),
            cache: CacheStatus::Miss,
            cache_counters: CacheCounters {
                misses: 1,
                stores: 1,
                ..CacheCounters::default()
            },
            winner: Some("sat-descent[seed=1]".into()),
            warm_start: Some(WarmStartReport {
                source: "cross-size".into(),
                from_modes: Some(3),
                weight: 20,
            }),
            workers: vec![WorkerReport {
                strategy: "sat-descent[seed=1]".into(),
                started_at: Duration::ZERO,
                finished_at: Duration::from_millis(900),
                events: vec![
                    WorkerEvent {
                        at: Duration::from_millis(100),
                        kind: EventKind::Improved(8),
                    },
                    WorkerEvent {
                        at: Duration::from_millis(800),
                        kind: EventKind::ProvedFloor(6),
                    },
                ],
                final_weight: Some(6),
                proved_floor: Some(6),
                cancelled: false,
                conflicts: 420,
                clauses_exported: 17,
                clauses_imported: 5,
                clauses_promoted: 2,
                imported_reasons: 3,
                propagations: 1234,
                adapted_export_lbd: 5,
                shard: Some(1),
            }],
            shards: vec![ShardReport {
                shard: 1,
                lanes: 3,
                clauses_sent: 11,
                clauses_received: 7,
                bounds_sent: 2,
                bounds_received: 1,
                frames_dropped: 0,
                rejoins: 0,
                dead: false,
            }],
        };
        let text = report.to_json().to_json();
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(parsed.get("cache").unwrap().as_str(), Some("miss"));
        let warm = parsed.get("warm_start").unwrap();
        assert_eq!(warm.get("source").unwrap().as_str(), Some("cross-size"));
        assert_eq!(warm.get("from_modes").unwrap().as_usize(), Some(3));
        assert_eq!(warm.get("weight").unwrap().as_usize(), Some(20));
        let counters = parsed.get("cache_counters").unwrap();
        assert_eq!(counters.get("misses").unwrap().as_usize(), Some(1));
        assert_eq!(counters.get("evictions").unwrap().as_usize(), Some(0));
        let workers = parsed.get("workers").unwrap().as_arr().unwrap();
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].get("conflicts").unwrap().as_usize(), Some(420));
        assert_eq!(
            workers[0].get("clauses_exported").unwrap().as_usize(),
            Some(17)
        );
        assert_eq!(
            workers[0].get("clauses_imported").unwrap().as_usize(),
            Some(5)
        );
        let events = workers[0].get("events").unwrap().as_arr().unwrap();
        assert_eq!(events[0].get("weight").unwrap().as_usize(), Some(8));
        assert_eq!(
            events[1].get("kind").unwrap().as_str(),
            Some("proved-floor")
        );
        let shards = parsed.get("shards").unwrap().as_arr().unwrap();
        assert_eq!(shards[0].get("clauses_sent").unwrap().as_usize(), Some(11));
        assert_eq!(shards[0].get("dead").unwrap().as_bool(), Some(false));

        // The worker report round-trips through its JSON form — the shard
        // coordinator depends on this to merge cross-process timelines.
        let worker = WorkerReport::from_json(&workers[0]).expect("parses back");
        assert_eq!(worker, report.workers[0]);
    }

    #[test]
    fn worker_report_from_json_rejects_torn_documents() {
        assert!(WorkerReport::from_json(&Value::Null).is_none());
        assert!(WorkerReport::from_json(&obj([("strategy", Value::Str("x".into()))])).is_none());
        // A negative timestamp must not panic Duration construction.
        let mut good = EngineReport {
            fingerprint: String::new(),
            total_elapsed: Duration::ZERO,
            cache: CacheStatus::Disabled,
            cache_counters: CacheCounters::default(),
            winner: None,
            warm_start: None,
            workers: vec![WorkerReport {
                strategy: "s".into(),
                started_at: Duration::ZERO,
                finished_at: Duration::ZERO,
                events: Vec::new(),
                final_weight: None,
                proved_floor: None,
                cancelled: false,
                conflicts: 0,
                clauses_exported: 0,
                clauses_imported: 0,
                clauses_promoted: 0,
                imported_reasons: 0,
                propagations: 0,
                adapted_export_lbd: 0,
                shard: None,
            }],
            shards: Vec::new(),
        }
        .to_json();
        if let Value::Obj(fields) = &mut good {
            if let Some(Value::Arr(workers)) = fields.get_mut("workers") {
                if let Value::Obj(w) = &mut workers[0] {
                    w.insert("started_seconds".into(), Value::Num(-4.0));
                }
                assert!(WorkerReport::from_json(&workers[0]).is_none());
            }
        }
    }
}

//! Persistent, content-addressed solution cache.
//!
//! Solved encodings are stored as one JSON file per problem fingerprint
//! (`<sha256>.json` under the cache directory), so a repeated compilation
//! of the same model is served in microseconds instead of re-running the
//! SAT portfolio. Entries record their optimality status: an *optimal*
//! entry is final, a *best-so-far* entry (budget-terminated run) is still
//! useful as a warm start and upgraded in place when a later run does
//! better.
//!
//! Writes go through a temp file + rename, so a crashed writer never
//! leaves a torn entry; a corrupt or unreadable entry is treated as a miss.
//!
//! A companion [`SizeIndex`] groups entries *across mode counts* by their
//! problem family (same objective, constraints, and Hamiltonian shape),
//! powering the engine's cross-size warm-start transfer: a cached `M`-mode
//! optimum embeds into the `N > M`-mode search as a feasible starting
//! point ([`encodings::embed`]).

use crate::fingerprint::Fingerprint;
use crate::json::{self, obj, Value};
use pauli::PauliString;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;
use std::time::SystemTime;

/// Schema version; bump to invalidate all existing entries.
const CACHE_VERSION: usize = 1;

/// Snapshot of a cache handle's traffic counters (cumulative over the
/// handle's lifetime; clones share counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found an optimal (final) entry.
    pub hit_optimal: u64,
    /// Lookups that found a best-so-far entry usable as a warm start.
    pub hit_warm_start: u64,
    /// Same-size lookups that missed but were answered by embedding a
    /// cached *smaller*-mode solution ([`SizeIndex`]) as a warm start.
    pub hit_cross_size: u64,
    /// Lookups that found nothing (or a torn/mismatched entry).
    pub misses: u64,
    /// Entries written (including upgrades of existing entries).
    pub stores: u64,
    /// Entries deleted by the byte-cap LRU eviction.
    pub evictions: u64,
}

#[derive(Debug, Default)]
struct CounterCells {
    hit_optimal: AtomicU64,
    hit_warm_start: AtomicU64,
    hit_cross_size: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

/// A cached solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The `2N` Majorana strings of the encoding.
    pub strings: Vec<PauliString>,
    /// Objective weight of the encoding.
    pub weight: usize,
    /// True when an UNSAT certificate proved this weight optimal.
    pub optimal: bool,
    /// Name of the strategy that produced the encoding (provenance only).
    pub strategy: String,
}

/// A directory of cached solutions keyed by problem fingerprint.
#[derive(Debug, Clone)]
pub struct SolutionCache {
    dir: PathBuf,
    byte_cap: Option<u64>,
    counters: Arc<CounterCells>,
}

impl SolutionCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SolutionCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SolutionCache {
            dir,
            byte_cap: None,
            counters: Arc::new(CounterCells::default()),
        })
    }

    /// Bounds the cache directory to roughly `max_bytes` of entry files;
    /// every store then evicts least-recently-written entries (oldest
    /// file mtime first) until the total fits. The newest entry is never
    /// evicted, so a cap smaller than one entry degrades to "keep only
    /// the latest". `None` disables eviction.
    pub fn with_byte_cap(mut self, max_bytes: Option<u64>) -> SolutionCache {
        self.byte_cap = max_bytes;
        self
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Traffic counters of this handle (and all of its clones).
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hit_optimal: self.counters.hit_optimal.load(Ordering::Relaxed),
            hit_warm_start: self.counters.hit_warm_start.load(Ordering::Relaxed),
            hit_cross_size: self.counters.hit_cross_size.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            stores: self.counters.stores.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Records that a same-size miss was answered by embedding a smaller
    /// cached solution. Counted by the engine (which owns the embedding),
    /// surfaced alongside the other traffic counters.
    pub fn note_cross_size_hit(&self) {
        self.counters.hit_cross_size.fetch_add(1, Ordering::Relaxed);
    }

    fn path_for(&self, fp: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.json", fp.to_hex()))
    }

    /// Looks up a fingerprint. Missing, torn, or schema-mismatched entries
    /// are all misses. Updates the hit/miss counters.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<CacheEntry> {
        match self.read_entry(fp) {
            Some(entry) => {
                if entry.optimal {
                    self.counters.hit_optimal.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.counters.hit_warm_start.fetch_add(1, Ordering::Relaxed);
                }
                Some(entry)
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// [`lookup`](Self::lookup) without touching the hit/miss counters —
    /// for serving-path probes that would otherwise double-count a request
    /// the engine's own cache probe already counts.
    pub fn peek(&self, fp: &Fingerprint) -> Option<CacheEntry> {
        self.read_entry(fp)
    }

    /// `lookup` without touching the counters (internal compare paths).
    fn read_entry(&self, fp: &Fingerprint) -> Option<CacheEntry> {
        let text = fs::read_to_string(self.path_for(fp)).ok()?;
        let doc = json::parse(&text).ok()?;
        if doc.get("version")?.as_usize()? != CACHE_VERSION {
            return None;
        }
        let weight = doc.get("weight")?.as_usize()?;
        let optimal = doc.get("optimal")?.as_bool()?;
        let strategy = doc.get("strategy")?.as_str()?.to_string();
        let strings = doc
            .get("strings")?
            .as_arr()?
            .iter()
            .map(|v| PauliString::from_str(v.as_str()?).ok())
            .collect::<Option<Vec<_>>>()?;
        if strings.is_empty() {
            return None;
        }
        Some(CacheEntry {
            strings,
            weight,
            optimal,
            strategy,
        })
    }

    /// Stores an entry, atomically replacing any previous one.
    ///
    /// Safe against concurrent writers in other threads *and* processes:
    /// each write goes through a writer-unique temp file, and the final
    /// rename is atomic, so readers never observe a torn entry.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(&self, fp: &Fingerprint, entry: &CacheEntry) -> io::Result<()> {
        let doc = obj([
            ("version", Value::Num(CACHE_VERSION as f64)),
            ("fingerprint", Value::Str(fp.to_hex())),
            ("weight", Value::Num(entry.weight as f64)),
            ("optimal", Value::Bool(entry.optimal)),
            ("strategy", Value::Str(entry.strategy.clone())),
            (
                "strings",
                Value::Arr(
                    entry
                        .strings
                        .iter()
                        .map(|s| Value::Str(s.to_string()))
                        .collect(),
                ),
            ),
        ]);
        // Writer-unique temp name: two concurrent writers of the same
        // fingerprint must never interleave writes into one file.
        let nonce = WRITE_NONCE.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".{}.{}.{}.tmp",
            fp.to_hex(),
            std::process::id(),
            nonce
        ));
        fs::write(&tmp, doc.to_json())?;
        let dest = self.path_for(fp);
        fs::rename(&tmp, &dest)?;
        self.counters.stores.fetch_add(1, Ordering::Relaxed);
        // Eviction failure must not fail the store.
        self.enforce_byte_cap(&dest);
        Ok(())
    }

    /// Deletes least-recently-written entries until the directory's entry
    /// files fit the byte cap (no-op without one). The just-written entry
    /// (`spare`) is never evicted — mtime order alone cannot guarantee
    /// that on filesystems with coarse timestamp granularity.
    fn enforce_byte_cap(&self, spare: &Path) {
        let Some(cap) = self.byte_cap else {
            return;
        };
        let Ok(listing) = fs::read_dir(&self.dir) else {
            return;
        };
        let mut entries: Vec<(SystemTime, u64, PathBuf)> = Vec::new();
        let mut total = 0u64;
        for item in listing.flatten() {
            let path = item.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue; // locks and temp files are not entries
            }
            let Ok(meta) = item.metadata() else {
                continue;
            };
            total += meta.len();
            if path != spare {
                entries.push((
                    meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                    meta.len(),
                    path,
                ));
            }
        }
        if total <= cap {
            return;
        }
        entries.sort_by_key(|(mtime, _, _)| *mtime);
        for (_, size, path) in &entries {
            if total <= cap {
                break;
            }
            if fs::remove_file(path).is_ok() {
                total = total.saturating_sub(*size);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Deletes an entry the caller found to be invalid (strings failing
    /// validation for the fingerprinted problem). Leaving such a file in
    /// place would be worse than a plain miss: its — possibly understated
    /// — weight makes [`store_if_better`](Self::store_if_better) refuse
    /// every genuine later result, a permanent cache miss.
    ///
    /// Runs under the same per-fingerprint lock as the compare-and-store
    /// path, so it never interleaves with a write in progress. A writer
    /// that fully replaced the entry between the caller's read and this
    /// call still loses its file — a benign race: deleting a good entry
    /// only costs the next compile a re-solve, while keeping a poisoned
    /// one costs every future compile, forever.
    ///
    /// # Errors
    ///
    /// Propagates lock-file failures; a missing entry file is not an
    /// error.
    pub fn invalidate(&self, fp: &Fingerprint) -> io::Result<()> {
        let _lock = LockFile::acquire(self.dir.join(format!(".{}.lock", fp.to_hex())))?;
        match fs::remove_file(self.path_for(fp)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Stores only when `entry` improves on the current content: better
    /// weight, or equal weight with optimality newly proved. Returns
    /// whether a write happened.
    ///
    /// The compare-and-store runs under a per-fingerprint advisory file
    /// lock, so a concurrent writer cannot sneak a *better* entry in
    /// between the comparison and the rename (which would downgrade the
    /// cache, e.g. losing an UNSAT certificate). Locks abandoned by a
    /// crashed process are stolen after [`LOCK_STALE`].
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures from the write path.
    pub fn store_if_better(&self, fp: &Fingerprint, entry: &CacheEntry) -> io::Result<bool> {
        let _lock = LockFile::acquire(self.dir.join(format!(".{}.lock", fp.to_hex())))?;
        match self.read_entry(fp) {
            Some(existing)
                if existing.weight < entry.weight
                    || (existing.weight == entry.weight && existing.optimal >= entry.optimal) =>
            {
                Ok(false)
            }
            _ => {
                self.store(fp, entry)?;
                Ok(true)
            }
        }
    }
}

/// Schema version of the size-index files; bump to invalidate them.
const INDEX_VERSION: usize = 1;

/// Cross-fingerprint index of the cache by mode count.
///
/// A solution-cache lookup is exact: a 5-mode problem misses even when
/// the 4-mode instance of the *same family* (same objective, constraint
/// toggles, Hamiltonian shape — the [`size_key`](crate::fingerprint::size_key))
/// sits fully solved next to it. This index closes that gap: one file
/// per size-key (`size-<sha256>.index` in the cache directory, an
/// extension the byte-cap eviction ignores) mapping mode counts to entry
/// fingerprints, so the engine can find the largest cached `M < N`
/// solution and lift it into the `N`-mode search
/// ([`encodings::embed`]) as a warm start.
///
/// Index entries are hints, not truths: an entry may point at an evicted
/// or torn cache file (eviction does not rewrite indexes), so consumers
/// re-resolve through [`SolutionCache::peek`] and skip dangling entries.
/// Writes use the same temp-file + rename + per-key flock discipline as
/// the cache itself.
#[derive(Debug, Clone)]
pub struct SizeIndex {
    dir: PathBuf,
}

impl SizeIndex {
    /// An index over a cache directory (typically
    /// [`SolutionCache::dir`]). No I/O happens until the first record or
    /// lookup.
    pub fn open(dir: impl Into<PathBuf>) -> SizeIndex {
        SizeIndex { dir: dir.into() }
    }

    fn path_for(&self, key: &str) -> PathBuf {
        let digest = crate::fingerprint::sha256(key.as_bytes());
        let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
        self.dir.join(format!("size-{hex}.index"))
    }

    fn lock_path_for(&self, key: &str) -> PathBuf {
        let digest = crate::fingerprint::sha256(key.as_bytes());
        let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
        self.dir.join(format!(".size-{hex}.lock"))
    }

    /// Parses an index file into its `(modes, fingerprint)` entries.
    /// Missing, torn, or schema-mismatched files — and individual
    /// malformed entries — read as empty/absent.
    fn read_entries(&self, key: &str) -> Vec<(usize, Fingerprint)> {
        let Ok(text) = fs::read_to_string(self.path_for(key)) else {
            return Vec::new();
        };
        let Ok(doc) = json::parse(&text) else {
            return Vec::new();
        };
        if doc.get("version").and_then(Value::as_usize) != Some(INDEX_VERSION) {
            return Vec::new();
        }
        let Some(Value::Obj(entries)) = doc.get("entries") else {
            return Vec::new();
        };
        let mut out: Vec<(usize, Fingerprint)> = entries
            .iter()
            .filter_map(|(modes, fp)| {
                Some((
                    modes.parse::<usize>().ok().filter(|&m| m > 0)?,
                    Fingerprint::from_hex(fp.as_str()?)?,
                ))
            })
            .collect();
        out.sort_unstable_by_key(|(modes, _)| *modes);
        out
    }

    /// Records that `problem`'s solution is cached under `fp`.
    /// Read-modify-write under a per-key advisory lock; a no-op when the
    /// entry is already present and identical.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures from the write path (a missing or
    /// torn existing index is *not* an error — it is rebuilt).
    pub fn record(
        &self,
        problem: &fermihedral::EncodingProblem,
        fp: &Fingerprint,
    ) -> io::Result<bool> {
        let key = crate::fingerprint::size_key(problem);
        let modes = problem.num_modes();
        let _lock = LockFile::acquire(self.lock_path_for(&key))?;
        let mut entries = self.read_entries(&key);
        match entries.iter_mut().find(|(m, _)| *m == modes) {
            Some((_, existing)) if existing == fp => return Ok(false),
            Some((_, existing)) => *existing = *fp,
            None => entries.push((modes, *fp)),
        }
        entries.sort_unstable_by_key(|(m, _)| *m);
        let doc = obj([
            ("version", Value::Num(INDEX_VERSION as f64)),
            ("key", Value::Str(key.clone())),
            (
                "entries",
                Value::Obj(
                    entries
                        .iter()
                        .map(|(m, f)| (m.to_string(), Value::Str(f.to_hex())))
                        .collect(),
                ),
            ),
        ]);
        let nonce = WRITE_NONCE.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".size.{}.{}.tmp", std::process::id(), nonce));
        fs::write(&tmp, doc.to_json())?;
        fs::rename(&tmp, self.path_for(&key))?;
        Ok(true)
    }

    /// The indexed fingerprints of the problem's family with mode count
    /// strictly below the problem's, **largest first** — the order a
    /// warm-start probe wants to try embeddings in. Entries may dangle
    /// (point at evicted files); resolve each via
    /// [`SolutionCache::peek`].
    pub fn fingerprints_below(
        &self,
        problem: &fermihedral::EncodingProblem,
    ) -> Vec<(usize, Fingerprint)> {
        let key = crate::fingerprint::size_key(problem);
        let mut entries = self.read_entries(&key);
        entries.retain(|(m, _)| *m < problem.num_modes());
        entries.reverse();
        entries
    }
}

use std::sync::atomic::{AtomicU64, Ordering};

static WRITE_NONCE: AtomicU64 = AtomicU64::new(0);

/// Advisory per-fingerprint file lock, released on drop.
///
/// On Unix this is a kernel `flock(2)` on the lock file's open descriptor.
/// That closes every hole the earlier create-exclusive scheme had:
///
/// * **No staleness.** The kernel drops the lock when the holder's
///   descriptor closes — including on crash — so a leftover lock *file*
///   is inert litter, not a held lock. The old scheme had to age-out
///   "stale" files, which (a) made every writer behind a crashed one wait
///   out the staleness window, and (b) let two stealers both remove-and-
///   recreate the file and *both* enter the critical section, so a slower
///   writer could clobber a just-stored optimal entry with a worse one.
/// * **Atomic handoff.** Release is the kernel's, not an `unlink` by path
///   that could delete a lock file some third writer had just created.
///
/// One subtlety remains because `Drop` unlinks the lock file (the
/// concurrency tests assert the directory ends clean): a waiter may have
/// opened the old inode before it was unlinked and then acquire a lock
/// that guards nothing. [`acquire`](LockFile::acquire) therefore re-checks
/// after locking that the path still names its inode, and retries if not.
struct LockFile {
    path: PathBuf,
    // Held for the flock; dropped (= unlocked) after the unlink in `Drop`.
    _file: fs::File,
}

#[cfg(unix)]
mod lock_sys {
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    // Directly against the libc std already links; the container has no
    // crates.io access for the `libc` crate.
    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }
    const LOCK_EX: i32 = 2;

    pub fn lock_exclusive(file: &File) -> io::Result<()> {
        loop {
            if unsafe { flock(file.as_raw_fd(), LOCK_EX) } == 0 {
                return Ok(());
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }
}

impl LockFile {
    #[cfg(unix)]
    fn acquire(path: PathBuf) -> io::Result<LockFile> {
        use std::os::unix::fs::MetadataExt;
        loop {
            let file = fs::OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)?;
            lock_sys::lock_exclusive(&file)?;
            // The previous holder may have unlinked the path between our
            // open and our lock; a lock on an unlinked inode excludes
            // nobody who opens the path afresh. Re-verify and retry.
            let held = file.metadata()?;
            match fs::metadata(&path) {
                Ok(cur) if cur.ino() == held.ino() && cur.dev() == held.dev() => {
                    return Ok(LockFile { path, _file: file });
                }
                _ => continue,
            }
        }
    }

    /// Portable fallback: create-exclusive spin lock. Weaker than the Unix
    /// path (a crashed holder blocks successors until the stale age-out),
    /// kept only for non-Unix builds.
    #[cfg(not(unix))]
    fn acquire(path: PathBuf) -> io::Result<LockFile> {
        const LOCK_STALE: std::time::Duration = std::time::Duration::from_secs(5);
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(file) => return Ok(LockFile { path, _file: file }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .map(|t| t.elapsed().unwrap_or_default() > LOCK_STALE)
                        .unwrap_or(false);
                    if stale {
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        // Unlink *while still holding* the lock: a waiter blocked on our
        // inode will acquire it, notice the path no longer matches, and
        // retry on the fresh path (see `acquire`).
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;
    use fermihedral::{EncodingProblem, Objective};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "fermihedral-cache-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(weight: usize, optimal: bool) -> CacheEntry {
        CacheEntry {
            strings: ["XZ", "YZ", "IX", "IY"]
                .iter()
                .map(|s| PauliString::from_str(s).unwrap())
                .collect(),
            weight,
            optimal,
            strategy: "test".into(),
        }
    }

    #[test]
    fn round_trips_after_reopen() {
        let dir = tmp_dir("roundtrip");
        let fp = fingerprint(&EncodingProblem::new(2, Objective::MajoranaWeight));
        {
            let cache = SolutionCache::open(&dir).unwrap();
            assert!(cache.lookup(&fp).is_none());
            cache.store(&fp, &entry(6, true)).unwrap();
        }
        // A fresh handle (≈ process restart) sees the entry.
        let cache = SolutionCache::open(&dir).unwrap();
        assert_eq!(cache.lookup(&fp), Some(entry(6, true)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn different_objectives_do_not_collide() {
        let dir = tmp_dir("objectives");
        let cache = SolutionCache::open(&dir).unwrap();
        let maj = fingerprint(&EncodingProblem::new(2, Objective::MajoranaWeight));
        let ham = fingerprint(&EncodingProblem::new(
            2,
            Objective::HamiltonianWeight(vec![fermion::MajoranaMonomial::from_sorted(vec![0, 1])]),
        ));
        cache.store(&maj, &entry(6, true)).unwrap();
        assert!(
            cache.lookup(&ham).is_none(),
            "changing the objective must miss"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = tmp_dir("corrupt");
        let cache = SolutionCache::open(&dir).unwrap();
        let fp = fingerprint(&EncodingProblem::new(3, Objective::MajoranaWeight));
        cache.store(&fp, &entry(10, false)).unwrap();
        fs::write(cache.path_for(&fp), "{ not json").unwrap();
        assert!(cache.lookup(&fp).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_never_downgrade_the_entry() {
        // Threads racing mixed-quality entries on one fingerprint: the
        // surviving entry must be the best one (weight 10, optimal), and
        // it must never be torn. Catches both the shared-temp-file
        // clobbering and the lookup-then-store race.
        let dir = tmp_dir("concurrent");
        let fp = fingerprint(&EncodingProblem::new(5, Objective::MajoranaWeight));
        let cache = SolutionCache::open(&dir).unwrap();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = cache.clone();
                scope.spawn(move || {
                    for round in 0..30u64 {
                        let weight = 10 + ((t + round) % 4) as usize;
                        let optimal = weight == 10;
                        cache.store_if_better(&fp, &entry(weight, optimal)).unwrap();
                    }
                });
            }
        });
        let survivor = cache.lookup(&fp).expect("entry must parse (not torn)");
        assert_eq!(survivor.weight, 10);
        assert!(survivor.optimal);
        // No temp or lock litter left behind.
        let litter: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name().to_string_lossy().to_string();
                name.ends_with(".tmp") || name.ends_with(".lock")
            })
            .collect();
        assert!(litter.is_empty(), "leftover files: {litter:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_track_hits_misses_and_stores() {
        let dir = tmp_dir("counters");
        let cache = SolutionCache::open(&dir).unwrap();
        let fp = fingerprint(&EncodingProblem::new(6, Objective::MajoranaWeight));
        assert_eq!(cache.counters(), CacheCounters::default());

        assert!(cache.lookup(&fp).is_none());
        cache.store(&fp, &entry(12, false)).unwrap();
        assert!(cache.lookup(&fp).is_some());
        cache.store(&fp, &entry(10, true)).unwrap();
        assert!(cache.lookup(&fp).is_some());

        let c = cache.counters();
        assert_eq!(c.misses, 1);
        assert_eq!(c.hit_warm_start, 1);
        assert_eq!(c.hit_optimal, 1);
        assert_eq!(c.stores, 2);
        assert_eq!(c.evictions, 0);
        // Clones share the cells.
        assert_eq!(cache.clone().counters(), c);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn byte_cap_evicts_oldest_entries_first() {
        let dir = tmp_dir("evict");
        // One entry serializes to a few hundred bytes; cap to roughly two.
        let probe = SolutionCache::open(&dir).unwrap();
        let fingerprints: Vec<_> = (1..=4usize)
            .map(|n| fingerprint(&EncodingProblem::new(n, Objective::MajoranaWeight)))
            .collect();
        probe.store(&fingerprints[0], &entry(9, true)).unwrap();
        let entry_size = fs::metadata(probe.path_for(&fingerprints[0]))
            .unwrap()
            .len();
        fs::remove_dir_all(&dir).unwrap();

        let cache = SolutionCache::open(&dir)
            .unwrap()
            .with_byte_cap(Some(entry_size * 2 + entry_size / 2));
        for fp in &fingerprints {
            cache.store(fp, &entry(9, true)).unwrap();
            // Distinct mtimes (LRU order is by file modification time).
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        // The two oldest entries were evicted, the two newest survive.
        assert!(cache.read_entry(&fingerprints[0]).is_none());
        assert!(cache.read_entry(&fingerprints[1]).is_none());
        assert!(cache.read_entry(&fingerprints[2]).is_some());
        assert!(cache.read_entry(&fingerprints[3]).is_some());
        assert_eq!(cache.counters().evictions, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tiny_byte_cap_always_keeps_the_newest_entry() {
        let dir = tmp_dir("evict-newest");
        let cache = SolutionCache::open(&dir).unwrap().with_byte_cap(Some(1));
        let a = fingerprint(&EncodingProblem::new(2, Objective::MajoranaWeight));
        let b = fingerprint(&EncodingProblem::new(3, Objective::MajoranaWeight));
        cache.store(&a, &entry(9, true)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.store(&b, &entry(9, true)).unwrap();
        assert!(
            cache.read_entry(&b).is_some(),
            "the just-written entry must survive any cap"
        );
        assert!(cache.read_entry(&a).is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg(unix)]
    fn leftover_lock_litter_neither_blocks_nor_breaks_exclusion() {
        // Regression test for the create-exclusive locking scheme. A lock
        // file abandoned by a crashed writer used to (a) stall every later
        // writer for the 5 s staleness window, and (b) open a steal race:
        // two writers could both remove-and-recreate the "stale" file,
        // both enter the compare-and-store critical section, and the
        // slower one could clobber a just-stored optimal entry with a
        // worse best-so-far one. With flock-based locking the litter file
        // is inert: nobody holds a kernel lock on it.
        use std::sync::Barrier;
        let dir = tmp_dir("lock-litter");
        let fp = fingerprint(&EncodingProblem::new(4, Objective::MajoranaWeight));
        let cache = SolutionCache::open(&dir).unwrap();
        let lock_path = dir.join(format!(".{}.lock", fp.to_hex()));

        let started = std::time::Instant::now();
        for round in 0..25u64 {
            let _ = fs::remove_file(cache.path_for(&fp));
            // Simulate the crashed holder: litter present, aged past the
            // old staleness window (so the old code would steal — racily —
            // rather than merely stall).
            fs::write(&lock_path, b"crashed-holder").unwrap();
            let _ = fs::File::options()
                .write(true)
                .open(&lock_path)
                .unwrap()
                .set_modified(SystemTime::now() - std::time::Duration::from_secs(60));

            // One fast optimal writer races one slower, worse writer.
            let barrier = Barrier::new(2);
            std::thread::scope(|scope| {
                let optimal_writer = cache.clone();
                let worse_writer = cache.clone();
                let b1 = &barrier;
                let b2 = &barrier;
                scope.spawn(move || {
                    b1.wait();
                    optimal_writer
                        .store_if_better(&fp, &entry(10, true))
                        .unwrap();
                });
                scope.spawn(move || {
                    b2.wait();
                    if round % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_micros(50 * round));
                    }
                    worse_writer
                        .store_if_better(&fp, &entry(12, false))
                        .unwrap();
                });
            });

            let survivor = cache.read_entry(&fp).expect("entry must exist");
            assert_eq!(
                (survivor.weight, survivor.optimal),
                (10, true),
                "round {round}: worse writer clobbered the optimal entry"
            );
        }
        assert!(
            started.elapsed() < std::time::Duration::from_secs(30),
            "writers stalled on inert lock litter: {:?}",
            started.elapsed()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_index_records_and_looks_up_below() {
        let dir = tmp_dir("size-index");
        fs::create_dir_all(&dir).unwrap();
        let index = SizeIndex::open(&dir);
        let problems: Vec<_> = (2..=5usize)
            .map(|n| EncodingProblem::full_sat(n, Objective::MajoranaWeight))
            .collect();
        for p in &problems {
            assert!(index.record(p, &fingerprint(p)).unwrap());
            // Idempotent: identical re-record writes nothing.
            assert!(!index.record(p, &fingerprint(p)).unwrap());
        }
        // Largest-first, strictly below.
        let below = index.fingerprints_below(&problems[3]); // N=5
        assert_eq!(
            below.iter().map(|(m, _)| *m).collect::<Vec<_>>(),
            vec![4, 3, 2]
        );
        assert_eq!(below[0].1, fingerprint(&problems[2]));
        // Nothing below the smallest.
        assert!(index.fingerprints_below(&problems[0]).is_empty());
        // A different family (constraint toggle) sees none of these.
        let other = EncodingProblem::new(5, Objective::MajoranaWeight);
        assert!(index.fingerprints_below(&other).is_empty());
        // No lock or temp litter.
        let litter: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name().to_string_lossy().to_string();
                name.ends_with(".tmp") || name.ends_with(".lock")
            })
            .collect();
        assert!(litter.is_empty(), "leftover files: {litter:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_index_tolerates_missing_torn_and_mismatched_files() {
        let dir = tmp_dir("size-index-torn");
        fs::create_dir_all(&dir).unwrap();
        let index = SizeIndex::open(&dir);
        let problem = EncodingProblem::full_sat(4, Objective::MajoranaWeight);
        let key = crate::fingerprint::size_key(&problem);

        // Missing: empty, not an error.
        assert!(index.fingerprints_below(&problem).is_empty());

        // Torn (half-written JSON): read as empty, and `record` rebuilds it.
        fs::write(index.path_for(&key), "{\"version\": 1, \"entr").unwrap();
        assert!(index.fingerprints_below(&problem).is_empty());
        let small = EncodingProblem::full_sat(3, Objective::MajoranaWeight);
        assert!(index.record(&small, &fingerprint(&small)).unwrap());
        assert_eq!(index.fingerprints_below(&problem).len(), 1);

        // Schema mismatch (future version): whole file reads as empty.
        let current = fs::read_to_string(index.path_for(&key)).unwrap();
        fs::write(
            index.path_for(&key),
            current.replace("\"version\": 1", "\"version\": 99"),
        )
        .unwrap();
        assert!(index.fingerprints_below(&problem).is_empty());

        // Individually malformed entries are skipped, valid ones survive.
        let doc = obj([
            ("version", Value::Num(INDEX_VERSION as f64)),
            (
                "entries",
                Value::Obj(
                    [
                        ("3".to_string(), Value::Str(fingerprint(&small).to_hex())),
                        ("zero".to_string(), Value::Str("ab".repeat(32))),
                        ("0".to_string(), Value::Str("ab".repeat(32))),
                        ("2".to_string(), Value::Str("not-hex".into())),
                        ("1".to_string(), Value::Num(7.0)),
                    ]
                    .into_iter()
                    .collect(),
                ),
            ),
        ]);
        fs::write(index.path_for(&key), doc.to_json()).unwrap();
        let below = index.fingerprints_below(&problem);
        assert_eq!(below, vec![(3, fingerprint(&small))]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_index_entries_may_dangle_after_eviction() {
        // Eviction deletes cache entry files without rewriting indexes;
        // the index keeps listing the fingerprint, and resolving it
        // through the cache simply misses. Consumers (the engine's
        // warm-start probe) skip such dangling entries.
        let dir = tmp_dir("size-index-dangle");
        let cache = SolutionCache::open(&dir).unwrap();
        let index = SizeIndex::open(&dir);
        let small = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
        let fp = fingerprint(&small);
        cache.store(&fp, &entry(6, true)).unwrap();
        index.record(&small, &fp).unwrap();

        // Evict by hand (what the byte cap does).
        fs::remove_file(cache.path_for(&fp)).unwrap();

        let larger = EncodingProblem::full_sat(3, Objective::MajoranaWeight);
        let below = index.fingerprints_below(&larger);
        assert_eq!(below, vec![(2, fp)], "index still lists the entry");
        assert!(
            cache.peek(&below[0].1).is_none(),
            "resolution through the cache misses"
        );
        // Index files themselves are never byte-cap eviction fodder:
        // they don't carry the .json entry extension.
        let survives = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".index"));
        assert!(survives);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_if_better_upgrades_and_refuses() {
        let dir = tmp_dir("upgrade");
        let cache = SolutionCache::open(&dir).unwrap();
        let fp = fingerprint(&EncodingProblem::new(4, Objective::MajoranaWeight));

        assert!(cache.store_if_better(&fp, &entry(20, false)).unwrap());
        // Worse weight: refused.
        assert!(!cache.store_if_better(&fp, &entry(22, false)).unwrap());
        // Same weight, optimality proved: upgraded.
        assert!(cache.store_if_better(&fp, &entry(20, true)).unwrap());
        // Same again: refused (no downgrade of the optimal flag either).
        assert!(!cache.store_if_better(&fp, &entry(20, false)).unwrap());
        // Strictly better weight: accepted.
        assert!(cache.store_if_better(&fp, &entry(18, true)).unwrap());
        assert_eq!(cache.lookup(&fp), Some(entry(18, true)));
        fs::remove_dir_all(&dir).unwrap();
    }
}

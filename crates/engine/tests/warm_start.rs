//! Differential tests of cross-size warm-start transfer: a cold portfolio
//! and one warm-started from an embedded smaller optimum must certify the
//! *same* optimum, and the warm race must open at (or below) the cold
//! race's first incumbent while spending strictly fewer conflicts.

use engine::{compile, CacheStatus, EngineConfig, EngineOutcome, EventKind, Strategy};
use fermihedral::{EncodingProblem, Objective};
use pauli::PauliString;
use sat::{ExportLbd, RestartPolicyKind};
use std::path::PathBuf;
use std::str::FromStr;
use std::time::Duration;

fn tmp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fermihedral-warmstart-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn descent_lanes() -> Vec<Strategy> {
    vec![
        Strategy::SatDescent {
            seed: 1,
            random_branch: 0.0,
            bk_phase_hint: true,
            restart: RestartPolicyKind::default(),
            export_lbd: ExportLbd::default(),
        },
        Strategy::SatDescent {
            seed: 2,
            random_branch: 0.02,
            bk_phase_hint: false,
            restart: RestartPolicyKind::Geometric {
                initial: 100,
                factor: 1.5,
            },
            export_lbd: ExportLbd::default(),
        },
        Strategy::SatDescent {
            seed: 3,
            random_branch: 0.1,
            bk_phase_hint: false,
            restart: RestartPolicyKind::Fixed { interval: 512 },
            export_lbd: ExportLbd::default(),
        },
    ]
}

fn total_conflicts(outcome: &EngineOutcome) -> u64 {
    outcome.report.workers.iter().map(|w| w.conflicts).sum()
}

/// Weight of the earliest `Improved` event across all workers — the
/// race's first incumbent.
fn first_incumbent(outcome: &EngineOutcome) -> usize {
    outcome
        .report
        .workers
        .iter()
        .flat_map(|w| &w.events)
        .filter_map(|e| match e.kind {
            EventKind::Improved(w) => Some((e.at, w)),
            _ => None,
        })
        .min_by_key(|(at, _)| *at)
        .map(|(_, w)| w)
        .expect("a run that certified must have found an incumbent")
}

/// The cold/warm differential on `small → large` full-SAT instances.
fn differential(small: usize, large: usize, timeout: Duration) {
    let dir = tmp_cache(&format!("diff-{small}-{large}"));
    let large_problem = EncodingProblem::full_sat(large, Objective::MajoranaWeight);

    // Cold: no cache at all.
    let cold = compile(
        &large_problem,
        &EngineConfig {
            strategies: descent_lanes(),
            total_timeout: Some(timeout),
            ..EngineConfig::default()
        },
    );
    assert!(cold.optimal_proved, "cold N={large} must certify");
    assert!(cold.report.warm_start.is_none(), "cold run warm-started");

    // Seed the cache (and the cross-size index) with the small optimum.
    let seed = compile(
        &EncodingProblem::full_sat(small, Objective::MajoranaWeight),
        &EngineConfig {
            strategies: descent_lanes(),
            total_timeout: Some(timeout),
            cache_dir: Some(dir.clone()),
            ..EngineConfig::default()
        },
    );
    assert!(seed.optimal_proved, "seed N={small} must certify");

    // Warm: same configuration as cold, plus the seeded cache. The
    // same-size lookup misses, the cross-size index answers.
    let warm = compile(
        &large_problem,
        &EngineConfig {
            strategies: descent_lanes(),
            total_timeout: Some(timeout),
            cache_dir: Some(dir.clone()),
            ..EngineConfig::default()
        },
    );
    assert!(warm.optimal_proved, "warm N={large} must certify");
    assert_eq!(
        warm.weight(),
        cold.weight(),
        "cold and warm-started races must certify the same optimum"
    );
    assert_eq!(warm.report.cache, CacheStatus::HitCrossSize);
    assert_eq!(warm.report.cache_counters.hit_cross_size, 1);
    let warm_start = warm
        .report
        .warm_start
        .as_ref()
        .expect("warm run must report its warm start");
    assert_eq!(warm_start.source, "cross-size");
    assert_eq!(warm_start.from_modes, Some(small));

    // The embedded incumbent is available at t = 0; it must be at least
    // as good as whatever the cold race found *first*.
    assert!(
        warm_start.weight <= first_incumbent(&cold),
        "warm initial incumbent {} worse than cold first incumbent {}",
        warm_start.weight,
        first_incumbent(&cold)
    );
    // And the embedding is a real upper bound: never below the optimum.
    assert!(warm_start.weight >= warm.weight().unwrap());

    // The warm race skips the whole descent from the Bravyi-Kitaev bound
    // down to the embedded weight — strictly fewer conflicts.
    assert!(
        total_conflicts(&warm) < total_conflicts(&cold),
        "warm spent {} conflicts, cold {}",
        total_conflicts(&warm),
        total_conflicts(&cold)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_started_4_mode_race_matches_cold_optimum() {
    // N=3 → N=4 full SAT: the acceptance instance. The cold N=4 optimum
    // is 16; the N=3 optimum (11) embeds at weight 11 + 2·(parity + 1).
    differential(3, 4, Duration::from_secs(120));
}

#[test]
#[ignore = "hours-scale: N=5 full-SAT certification"]
fn warm_started_5_mode_race_matches_cold_optimum() {
    differential(4, 5, Duration::from_secs(6 * 60 * 60));
}

#[test]
fn cross_size_prefers_the_largest_cached_size() {
    // With N=2 *and* N=3 cached, an N=4 compile must embed from N=3.
    let dir = tmp_cache("largest");
    let config = |cache: bool| EngineConfig {
        strategies: descent_lanes(),
        total_timeout: Some(Duration::from_secs(120)),
        cache_dir: cache.then(|| dir.clone()),
        ..EngineConfig::default()
    };
    for n in [2usize, 3] {
        let seeded = compile(
            &EncodingProblem::full_sat(n, Objective::MajoranaWeight),
            &config(true),
        );
        assert!(seeded.optimal_proved);
    }
    let warm = compile(
        &EncodingProblem::full_sat(4, Objective::MajoranaWeight),
        &config(true),
    );
    assert_eq!(
        warm.report.warm_start.as_ref().and_then(|w| w.from_modes),
        Some(3)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cross_size_respects_problem_family_boundaries() {
    // A cached full-SAT N=2 optimum must NOT warm-start an N=3 problem
    // with different constraint toggles (its embedding may not even be
    // feasible there, and the family key must keep them apart).
    let dir = tmp_cache("family");
    let seeded = compile(
        &EncodingProblem::full_sat(2, Objective::MajoranaWeight),
        &EngineConfig {
            strategies: descent_lanes(),
            cache_dir: Some(dir.clone()),
            ..EngineConfig::default()
        },
    );
    assert!(seeded.optimal_proved);
    let other_family = compile(
        &EncodingProblem::new(3, Objective::MajoranaWeight).with_vacuum_condition(false),
        &EngineConfig {
            strategies: descent_lanes(),
            cache_dir: Some(dir.clone()),
            ..EngineConfig::default()
        },
    );
    assert_eq!(other_family.report.cache, CacheStatus::Miss);
    assert!(other_family.report.warm_start.is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_warm_entry_is_rejected_at_the_trust_boundary() {
    // A same-size best-so-far entry whose strings are shape-correct but
    // algebraically invalid, with a *lying* weight below the true
    // optimum. Published unchecked, it would poison the shared bound
    // (descent would go straight to UNSAT at 5 and "certify" an invalid
    // encoding at a weight its strings never had). The engine must treat
    // it as a miss and certify the real optimum cold.
    let dir = tmp_cache("corrupt-warm");
    let problem = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
    let cache = engine::SolutionCache::open(&dir).unwrap();
    let fp = engine::fingerprint(&problem);
    cache
        .store(
            &fp,
            &engine::CacheEntry {
                // XX/YY commute: not a valid encoding.
                strings: ["XX", "YY", "ZI", "IZ"]
                    .iter()
                    .map(|s| PauliString::from_str(s).unwrap())
                    .collect(),
                weight: 5,
                optimal: false,
                strategy: "corrupt".into(),
            },
        )
        .unwrap();

    let outcome = compile(
        &problem,
        &EngineConfig {
            strategies: descent_lanes(),
            cache_dir: Some(dir.clone()),
            ..EngineConfig::default()
        },
    );
    assert_eq!(outcome.weight(), Some(6), "optimum survives the bad entry");
    assert!(outcome.optimal_proved);
    assert_eq!(
        outcome.report.cache,
        CacheStatus::Miss,
        "an invalid entry is a miss, not a warm start"
    );
    assert!(outcome.report.warm_start.is_none());
    // The poison file was deleted and the genuine result stored in its
    // place — without the repair, store_if_better would refuse the real
    // optimum against the lying weight 5 forever.
    let repaired = cache.lookup(&fp).expect("cache repaired");
    assert_eq!((repaired.weight, repaired.optimal), (6, true));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lying_optimal_entry_is_demoted_and_repaired() {
    // Valid strings (the true N=2 optimum), but the file claims weight 5
    // and optimality. The claim must not be served: the strings are
    // demoted to a warm start at their *measured* weight, the race
    // certifies for real, and the corrected entry replaces the liar.
    let dir = tmp_cache("lying-optimal");
    let problem = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
    let cache = engine::SolutionCache::open(&dir).unwrap();
    let fp = engine::fingerprint(&problem);
    cache
        .store(
            &fp,
            &engine::CacheEntry {
                strings: ["IX", "IY", "XZ", "YZ"]
                    .iter()
                    .map(|s| PauliString::from_str(s).unwrap())
                    .collect(),
                weight: 5,
                optimal: true,
                strategy: "liar".into(),
            },
        )
        .unwrap();

    let outcome = compile(
        &problem,
        &EngineConfig {
            strategies: descent_lanes(),
            cache_dir: Some(dir.clone()),
            ..EngineConfig::default()
        },
    );
    assert!(!outcome.from_cache, "a lying optimal claim must not serve");
    assert_eq!(outcome.weight(), Some(6));
    assert!(outcome.optimal_proved);
    let warm = outcome
        .report
        .warm_start
        .expect("strings demoted to warm start");
    assert_eq!(warm.source, "cache-entry");
    assert_eq!(warm.weight, 6, "re-measured, not the claimed 5");
    let repaired = cache.lookup(&fp).expect("cache repaired");
    assert_eq!((repaired.weight, repaired.optimal), (6, true));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn config_warm_hint_seeds_the_race() {
    // The shard-worker path: no cache, the hint arrives via the config.
    // A valid JW hint must be adopted (source "config") and the race
    // still certifies; an invalid hint must be ignored entirely.
    let problem = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
    let jw: Vec<PauliString> = ["IX", "IY", "XZ", "YZ"]
        .iter()
        .map(|s| PauliString::from_str(s).unwrap())
        .collect();
    let outcome = compile(
        &problem,
        &EngineConfig {
            strategies: descent_lanes(),
            warm_hint: Some(jw),
            ..EngineConfig::default()
        },
    );
    assert_eq!(outcome.weight(), Some(6));
    assert!(outcome.optimal_proved);
    let warm = outcome.report.warm_start.expect("hint adopted");
    assert_eq!(warm.source, "config");
    assert_eq!(warm.weight, 6, "re-measured, not trusted");

    let invalid: Vec<PauliString> = ["XX", "YY", "ZI", "IZ"]
        .iter()
        .map(|s| PauliString::from_str(s).unwrap())
        .collect();
    let outcome = compile(
        &problem,
        &EngineConfig {
            strategies: descent_lanes(),
            warm_hint: Some(invalid),
            ..EngineConfig::default()
        },
    );
    assert_eq!(outcome.weight(), Some(6));
    assert!(
        outcome.report.warm_start.is_none(),
        "invalid config hint must be discarded"
    );
}

//! End-to-end tests of the portfolio engine: parity with the sequential
//! descent, incumbent sharing, cancellation, and the persistent cache.

use engine::{compile, BaselineKind, ClauseSharing, EngineConfig, EngineOutcome, Strategy};
use fermihedral::descent::{solve_optimal, DescentConfig};
use fermihedral::{AnnealConfig, EncodingProblem, Objective};
use fermion::MajoranaMonomial;
use sat::{ExchangeConfig, ExportLbd, RestartPolicyKind};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tmp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "fermihedral-engine-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn three_descent_lanes() -> Vec<Strategy> {
    vec![
        Strategy::SatDescent {
            seed: 1,
            random_branch: 0.0,
            bk_phase_hint: true,
            restart: RestartPolicyKind::default(),
            export_lbd: ExportLbd::default(),
        },
        Strategy::SatDescent {
            seed: 7,
            random_branch: 0.05,
            bk_phase_hint: false,
            restart: RestartPolicyKind::Geometric {
                initial: 64,
                factor: 1.3,
            },
            export_lbd: ExportLbd::default(),
        },
        Strategy::SatDescent {
            seed: 13,
            random_branch: 0.15,
            bk_phase_hint: false,
            restart: RestartPolicyKind::Fixed { interval: 128 },
            export_lbd: ExportLbd::default(),
        },
    ]
}

fn assert_valid(outcome: &EngineOutcome, problem: &EncodingProblem) {
    let best = outcome.best.as_ref().expect("an encoding was found");
    let phased: Vec<pauli::PhasedString> = best
        .strings
        .iter()
        .cloned()
        .map(pauli::PhasedString::from)
        .collect();
    let report = encodings::validate::validate_strings(&phased);
    assert!(report.anticommuting);
    assert!(report.algebraically_independent);
    if problem.has_vacuum_condition() {
        assert!(report.xy_pair_condition);
    }
}

#[test]
fn portfolio_matches_sequential_optimum_on_small_modes() {
    // The acceptance bar: ≥ 3 workers, identical optimal weights to the
    // sequential solve_optimal on 2–4 modes.
    for modes in 2..=4usize {
        let problem = EncodingProblem::full_sat(modes, Objective::MajoranaWeight);
        let sequential = solve_optimal(&problem, &DescentConfig::default());
        let config = EngineConfig {
            strategies: three_descent_lanes(),
            ..EngineConfig::default()
        };
        let parallel = compile(&problem, &config);
        assert_eq!(
            parallel.weight(),
            sequential.weight(),
            "{modes} modes: portfolio and sequential disagree"
        );
        assert!(parallel.optimal_proved, "{modes} modes: no certificate");
        assert!(!parallel.from_cache);
        assert_eq!(parallel.report.workers.len(), 3);
        assert_valid(&parallel, &problem);
    }
}

#[test]
fn default_portfolio_includes_baselines_and_wins() {
    let problem = EncodingProblem::full_sat(3, Objective::MajoranaWeight);
    let outcome = compile(&problem, &EngineConfig::default());
    // N=3 full-SAT optimum from the paper's tables: strictly below BK.
    let sequential = solve_optimal(&problem, &DescentConfig::default());
    assert_eq!(outcome.weight(), sequential.weight());
    assert!(outcome.optimal_proved);
    assert!(
        outcome.report.workers.len() >= 5,
        "default portfolio races SAT lanes and baselines"
    );
    assert_valid(&outcome, &problem);
}

#[test]
fn hamiltonian_objective_runs_annealing_lane() {
    let monomials = vec![
        MajoranaMonomial::from_sorted(vec![0, 1]),
        MajoranaMonomial::from_sorted(vec![2, 3]),
        MajoranaMonomial::from_sorted(vec![0, 1, 2, 3]),
    ];
    let problem = EncodingProblem::full_sat(2, Objective::HamiltonianWeight(monomials));
    let sequential = solve_optimal(&problem, &DescentConfig::default());
    let outcome = compile(&problem, &EngineConfig::default());
    assert_eq!(outcome.weight(), sequential.weight());
    assert!(outcome.optimal_proved);
    assert!(
        outcome
            .report
            .workers
            .iter()
            .any(|w| w.strategy.starts_with("anneal[")),
        "hamiltonian objective must add an annealing lane"
    );
}

#[test]
fn second_run_is_served_from_cache_without_solving() {
    let dir = tmp_cache("serve");
    let problem = EncodingProblem::full_sat(3, Objective::MajoranaWeight);
    let config = EngineConfig {
        strategies: three_descent_lanes(),
        cache_dir: Some(dir.clone()),
        ..EngineConfig::default()
    };

    let first = compile(&problem, &config);
    assert!(!first.from_cache);
    assert!(first.optimal_proved);

    let started = Instant::now();
    let second = compile(&problem, &config);
    let elapsed = started.elapsed();
    assert!(second.from_cache, "second run must hit the cache");
    assert_eq!(second.weight(), first.weight());
    assert!(second.optimal_proved);
    assert!(
        second.report.workers.is_empty(),
        "no solver ran on the cache hit"
    );
    assert!(
        elapsed < Duration::from_millis(100),
        "cache hit took {elapsed:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cache_misses_when_the_objective_changes() {
    let dir = tmp_cache("objective");
    let config = EngineConfig {
        strategies: three_descent_lanes(),
        cache_dir: Some(dir.clone()),
        ..EngineConfig::default()
    };
    let maj = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
    let ham = EncodingProblem::full_sat(
        2,
        Objective::HamiltonianWeight(vec![MajoranaMonomial::from_sorted(vec![0, 1])]),
    );
    assert!(!compile(&maj, &config).from_cache);
    let ham_run = compile(&ham, &config);
    assert!(
        !ham_run.from_cache,
        "different objective must not reuse the majorana entry"
    );
    // Both entries coexist afterwards.
    assert!(compile(&maj, &config).from_cache);
    assert!(compile(&ham, &config).from_cache);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn cache_survives_process_restart_shape() {
    // A fresh SolutionCache handle over the same directory (what a process
    // restart amounts to) still hits.
    let dir = tmp_cache("restart");
    let problem = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
    {
        let config = EngineConfig {
            strategies: three_descent_lanes(),
            cache_dir: Some(dir.clone()),
            ..EngineConfig::default()
        };
        assert!(!compile(&problem, &config).from_cache);
    }
    let fresh_config = EngineConfig {
        strategies: three_descent_lanes(),
        cache_dir: Some(dir.clone()),
        ..EngineConfig::default()
    };
    assert!(compile(&problem, &fresh_config).from_cache);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn total_timeout_cancels_a_hopeless_run_promptly() {
    // 7 modes without algebraic independence is far beyond what a few
    // hundred milliseconds can prove optimal; the engine must stop on its
    // deadline (through the solver stop flag) and still return the best
    // incumbent (at worst the BK baseline).
    let problem = EncodingProblem::new(7, Objective::MajoranaWeight);
    let config = EngineConfig {
        strategies: vec![
            Strategy::SatDescent {
                seed: 1,
                random_branch: 0.0,
                bk_phase_hint: true,
                restart: RestartPolicyKind::default(),
                export_lbd: ExportLbd::default(),
            },
            Strategy::SatDescent {
                seed: 2,
                random_branch: 0.1,
                bk_phase_hint: false,
                restart: RestartPolicyKind::Fixed { interval: 256 },
                export_lbd: ExportLbd::default(),
            },
            Strategy::Baseline(BaselineKind::BravyiKitaev),
        ],
        total_timeout: Some(Duration::from_millis(300)),
        persist_on_budget: true,
        conflict_budget_per_call: Some(2_000),
        ..EngineConfig::default()
    };
    let started = Instant::now();
    let outcome = compile(&problem, &config);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "deadline ignored: {elapsed:?}"
    );
    assert!(outcome.best.is_some(), "baseline incumbent must survive");
    assert!(!outcome.optimal_proved);
}

#[test]
fn anneal_lane_reseeds_from_a_better_incumbent() {
    // Structure γ₃γ₅: the ternary tree encodes it at weight 1, but the
    // best *pair permutation* of Bravyi-Kitaev only reaches weight 2
    // (verified by brute force over all 3! permutations). Annealing is a
    // pure pair-permutation search, so a BK-based annealing lane can never
    // reach weight 1 from its own base — it must adopt the ternary-tree
    // baseline's incumbent mid-race and re-anneal from there.
    // Vacuum condition off: the ternary tree does not satisfy the XY-pair
    // constraint, and the lane under test needs it as a publishable
    // incumbent.
    let monomials = vec![MajoranaMonomial::from_sorted(vec![3, 5])];
    let problem = EncodingProblem::new(3, Objective::HamiltonianWeight(monomials))
        .with_vacuum_condition(false);
    let strategies = vec![
        Strategy::Baseline(BaselineKind::TernaryTree),
        Strategy::Anneal {
            base: BaselineKind::BravyiKitaev,
            schedule: AnnealConfig::default(),
        },
    ];

    let outcome = compile(
        &problem,
        &EngineConfig {
            strategies: strategies.clone(),
            ..EngineConfig::default()
        },
    );
    assert_eq!(outcome.weight(), Some(1), "ternary tree optimum must win");
    let anneal = outcome
        .report
        .workers
        .iter()
        .find(|w| w.strategy.starts_with("anneal"))
        .expect("anneal lane report");
    assert!(
        anneal
            .events
            .iter()
            .any(|e| matches!(e.kind, engine::EventKind::Reseeded(1))),
        "lane must record adopting the weight-1 incumbent: {:?}",
        anneal.events
    );
    assert_eq!(
        anneal.final_weight,
        Some(1),
        "re-annealing the adopted incumbent must retain its weight"
    );

    // Control: with re-seeding disabled the lane is stuck at the best BK
    // pair permutation (weight 2, always found — the search space has 6
    // points).
    let outcome = compile(
        &problem,
        &EngineConfig {
            strategies: vec![
                strategies[0].clone(),
                Strategy::Anneal {
                    base: BaselineKind::BravyiKitaev,
                    schedule: AnnealConfig {
                        reseed_t0: None,
                        ..AnnealConfig::default()
                    },
                },
            ],
            ..EngineConfig::default()
        },
    );
    let anneal = outcome
        .report
        .workers
        .iter()
        .find(|w| w.strategy.starts_with("anneal"))
        .expect("anneal lane report");
    assert_eq!(
        anneal.final_weight,
        Some(2),
        "BK permutations bottom out at 2"
    );
    assert!(
        !anneal
            .events
            .iter()
            .any(|e| matches!(e.kind, engine::EventKind::Reseeded(_))),
        "re-seeding disabled must record no Reseeded event"
    );
}

#[test]
fn anneal_lane_does_not_idle_out_the_timeout() {
    // Re-seeding waits for other lanes' improvements — but once every
    // other lane has exhausted its budget without a certificate, nobody is
    // left to improve the incumbent and the annealer must exit instead of
    // sleeping out the whole (here: enormous) total_timeout.
    let monomials = vec![MajoranaMonomial::from_sorted(vec![0, 3])];
    let problem = EncodingProblem::new(5, Objective::HamiltonianWeight(monomials));
    let config = EngineConfig {
        strategies: vec![
            Strategy::SatDescent {
                seed: 1,
                random_branch: 0.0,
                bk_phase_hint: true,
                restart: RestartPolicyKind::default(),
                export_lbd: ExportLbd::default(),
            },
            Strategy::Baseline(BaselineKind::BravyiKitaev),
            Strategy::Anneal {
                base: BaselineKind::BravyiKitaev,
                schedule: AnnealConfig::default(),
            },
        ],
        total_timeout: Some(Duration::from_secs(300)),
        // The SAT lane exhausts its (tiny) budget almost immediately and
        // exits without a certificate.
        conflict_budget_per_call: Some(50),
        persist_on_budget: false,
        ..EngineConfig::default()
    };
    let started = Instant::now();
    let outcome = compile(&problem, &config);
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "anneal lane idled out the timeout: {:?}",
        started.elapsed()
    );
    assert!(outcome.best.is_some(), "baseline incumbent must survive");
}

#[test]
fn anneal_lane_respects_cancellation() {
    // An enormous annealing schedule would run for minutes; the total
    // timeout must cut it off.
    let monomials = vec![MajoranaMonomial::from_sorted(vec![0, 3])];
    let problem = EncodingProblem::new(6, Objective::HamiltonianWeight(monomials));
    let config = EngineConfig {
        strategies: vec![Strategy::Anneal {
            base: BaselineKind::BravyiKitaev,
            schedule: AnnealConfig {
                iterations: 50_000_000,
                ..AnnealConfig::default()
            },
        }],
        total_timeout: Some(Duration::from_millis(200)),
        ..EngineConfig::default()
    };
    let started = Instant::now();
    let outcome = compile(&problem, &config);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "annealing ignored the deadline"
    );
    let worker = &outcome.report.workers[0];
    assert!(worker.cancelled, "the lane must report its cancellation");
}

#[test]
fn clause_sharing_off_reproduces_incumbent_only_racing() {
    // The off-path must behave like the pre-clause-sharing engine: same
    // certified optimum, and zero exchange traffic in every lane.
    let problem = EncodingProblem::full_sat(3, Objective::MajoranaWeight);
    let sequential = solve_optimal(&problem, &DescentConfig::default());
    let config = EngineConfig {
        strategies: three_descent_lanes(),
        clause_sharing: ClauseSharing {
            enabled: false,
            ..ClauseSharing::default()
        },
        ..EngineConfig::default()
    };
    let outcome = compile(&problem, &config);
    assert_eq!(outcome.weight(), sequential.weight());
    assert!(outcome.optimal_proved);
    for w in &outcome.report.workers {
        assert_eq!(
            (w.clauses_exported, w.clauses_imported, w.clauses_promoted),
            (0, 0, 0),
            "lane {} exchanged clauses with sharing disabled",
            w.strategy
        );
    }
}

#[test]
fn clause_sharing_on_exchanges_clauses_and_stays_optimal() {
    // Unfiltered sharing between three racing lanes: the certificate must
    // match the sequential optimum and real traffic must flow.
    let problem = EncodingProblem::full_sat(3, Objective::MajoranaWeight);
    let sequential = solve_optimal(&problem, &DescentConfig::default());
    let config = EngineConfig {
        strategies: three_descent_lanes(),
        clause_sharing: ClauseSharing {
            enabled: true,
            exchange: ExchangeConfig {
                export_lbd: ExportLbd::fixed(u32::MAX),
                max_shared_len: usize::MAX,
                capacity_per_lane: 1 << 14,
            },
        },
        ..EngineConfig::default()
    };
    let outcome = compile(&problem, &config);
    assert_eq!(outcome.weight(), sequential.weight());
    assert!(outcome.optimal_proved);
    assert_valid(&outcome, &problem);
    let exported: u64 = outcome
        .report
        .workers
        .iter()
        .map(|w| w.clauses_exported)
        .sum();
    assert!(
        exported > 0,
        "three lanes refuting the optimum must export clauses: {:?}",
        outcome
            .report
            .workers
            .iter()
            .map(|w| (&w.strategy, w.conflicts, w.clauses_exported))
            .collect::<Vec<_>>()
    );
}

#[test]
fn default_config_enables_sharing() {
    assert!(EngineConfig::default().clause_sharing.enabled);
}

#[test]
fn cache_counters_surface_in_the_report() {
    let dir = tmp_cache("report-counters");
    let problem = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
    let config = EngineConfig {
        strategies: three_descent_lanes(),
        cache_dir: Some(dir.clone()),
        ..EngineConfig::default()
    };
    let first = compile(&problem, &config);
    assert_eq!(first.report.cache_counters.misses, 1);
    assert_eq!(first.report.cache_counters.stores, 1);
    let second = compile(&problem, &config);
    assert!(second.from_cache);
    assert_eq!(second.report.cache_counters.hit_optimal, 1);
    assert_eq!(second.report.cache_counters.misses, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn report_json_round_trips() {
    let problem = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
    let outcome = compile(&problem, &EngineConfig::default());
    let text = outcome.report.to_json().to_json();
    let parsed = engine::json::parse(&text).unwrap();
    assert_eq!(
        parsed.get("fingerprint").unwrap().as_str().unwrap().len(),
        64
    );
    assert_eq!(
        parsed.get("workers").unwrap().as_arr().unwrap().len(),
        outcome.report.workers.len()
    );
}

#[test]
fn partition_spreads_lanes_round_robin() {
    let problem = EncodingProblem::full_sat(3, Objective::MajoranaWeight);
    let lanes = engine::default_portfolio(&problem);
    let parts = engine::partition_strategies(&lanes, 2);
    assert_eq!(parts.len(), 2);
    assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), lanes.len());
    // Round-robin: consecutive lanes land in different shards, so seed
    // and restart diversity spreads instead of clustering.
    assert_eq!(parts[0][0].name(), lanes[0].name());
    assert_eq!(parts[1][0].name(), lanes[1].name());
    // More shards than lanes: every partition stays non-empty.
    let many = engine::partition_strategies(&lanes, lanes.len() + 5);
    assert_eq!(many.len(), lanes.len());
    assert!(many.iter().all(|p| p.len() == 1));
    // Degenerate inputs do not panic.
    assert!(engine::partition_strategies(&[], 3).is_empty());
}

#[test]
fn compile_bridged_exposes_live_race_handles() {
    // The shard worker attaches to a race through these handles; assert
    // they observe the real shared state: the final incumbent weight,
    // the proved floor, the decided cancel, and a live clause bridge.
    let problem = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
    let captured: std::sync::Mutex<Option<engine::RaceBridge>> = std::sync::Mutex::new(None);
    let outcome = engine::compile_bridged(&problem, &EngineConfig::default(), |bridge| {
        *captured.lock().unwrap() = Some(bridge);
    });
    let bridge = captured.into_inner().unwrap().expect("hook ran");
    assert_eq!(outcome.weight(), Some(6));
    assert!(outcome.optimal_proved);
    assert_eq!(bridge.bound.get(), 6, "bound handle tracks the incumbent");
    assert_eq!(
        bridge.floor.load(std::sync::atomic::Ordering::Relaxed),
        6,
        "floor handle saw the UNSAT certificate"
    );
    assert!(bridge.cancel.is_cancelled(), "decided race raised cancel");
    let remote = bridge.remote.expect("descent lanes get a bridge lane");
    let mut outgoing = Vec::new();
    remote.drain_outgoing(&mut outgoing);
    // Whatever the lanes exported was also routed to the bridge inbox.
    let exported: u64 = outcome
        .report
        .workers
        .iter()
        .map(|w| w.clauses_exported)
        .sum();
    assert!(
        exported == 0 || !outgoing.is_empty(),
        "exports must reach the bridge (exported {exported})"
    );
}

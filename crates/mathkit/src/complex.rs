//! Double-precision complex numbers.
//!
//! A minimal, dependency-free replacement for `num_complex::Complex64`
//! covering exactly what the quantum-simulation stack needs: field
//! arithmetic, conjugation, modulus/argument, and the exponential map.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Example
///
/// ```
/// use mathkit::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, -Complex64::ONE);
/// assert!((Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2) - 2.0 * i).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a pure-real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// `i^k` for any integer `k` (the four fourth-roots of unity).
    ///
    /// Pauli-string arithmetic only ever produces phases of this form, so the
    /// workspace threads phases around as exponents and converts late.
    #[inline]
    pub fn i_pow(k: i64) -> Self {
        match k.rem_euclid(4) {
            0 => Complex64::ONE,
            1 => Complex64::I,
            2 => -Complex64::ONE,
            _ => -Complex64::I,
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²` (avoids the square root of [`abs`](Self::abs)).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Principal argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Does not panic, but returns non-finite parts when `z == 0`, matching
    /// IEEE-754 division semantics.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// True when both parts are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self - other).abs() <= tol
    }

    /// True when the modulus is within `tol` of zero.
    #[inline]
    pub fn is_zero(self, tol: f64) -> bool {
        self.norm_sqr() <= tol * tol
    }

    /// True when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_re(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^-1
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, Add::add)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const TOL: f64 = 1e-12;

    #[test]
    fn constants_behave() {
        assert_eq!(Complex64::ZERO + Complex64::ONE, Complex64::ONE);
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
        assert_eq!(Complex64::i_pow(0), Complex64::ONE);
        assert_eq!(Complex64::i_pow(1), Complex64::I);
        assert_eq!(Complex64::i_pow(2), -Complex64::ONE);
        assert_eq!(Complex64::i_pow(3), -Complex64::I);
        assert_eq!(Complex64::i_pow(-1), -Complex64::I);
        assert_eq!(Complex64::i_pow(7), -Complex64::I);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::new(-3.0, 4.0);
        let w = Complex64::from_polar(z.abs(), z.arg());
        assert!(z.approx_eq(w, TOL));
        assert!((z.abs() - 5.0).abs() < TOL);
    }

    #[test]
    fn exponential_of_imaginary_is_rotation() {
        let z = Complex64::new(0.0, std::f64::consts::PI);
        assert!(z.exp().approx_eq(-Complex64::ONE, TOL));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(2.5, -1.5);
        let b = Complex64::new(-0.25, 3.0);
        assert!((a * b / b).approx_eq(a, TOL));
        assert!((b.inv() * b).approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn sum_of_iterator() {
        let zs = [Complex64::ONE, Complex64::I, -Complex64::ONE];
        let s: Complex64 = zs.iter().copied().sum();
        assert!(s.approx_eq(Complex64::I, TOL));
    }

    fn finite_complex() -> impl Strategy<Value = Complex64> {
        (-1e6..1e6f64, -1e6..1e6f64).prop_map(|(re, im)| Complex64::new(re, im))
    }

    proptest! {
        #[test]
        fn prop_mul_commutes(a in finite_complex(), b in finite_complex()) {
            prop_assert!((a * b).approx_eq(b * a, 1e-6 * (1.0 + (a*b).abs())));
        }

        #[test]
        fn prop_conj_is_involution(a in finite_complex()) {
            prop_assert_eq!(a.conj().conj(), a);
        }

        #[test]
        fn prop_norm_multiplicative(a in finite_complex(), b in finite_complex()) {
            let lhs = (a * b).abs();
            let rhs = a.abs() * b.abs();
            prop_assert!((lhs - rhs).abs() <= 1e-6 * (1.0 + rhs));
        }

        #[test]
        fn prop_distributive(a in finite_complex(), b in finite_complex(), c in finite_complex()) {
            let lhs = a * (b + c);
            let rhs = a * b + a * c;
            prop_assert!(lhs.approx_eq(rhs, 1e-5 * (1.0 + lhs.abs())));
        }
    }
}

//! Bit-packed linear algebra over GF(2).
//!
//! Algebraic independence of a set of Pauli strings — constraint (5) in the
//! paper — is exactly GF(2) linear independence of their symplectic bit
//! rows: the phase-free product of a subset of strings is the XOR of their
//! rows, and it equals the all-identity string iff the XOR is zero.
//! [`BitMatrix::rank`] therefore gives a polynomial-time validity check that
//! complements the paper's exponential SAT constraint.
//!
//! The same machinery drives the *linear encoding* engine in the
//! `encodings` crate: Jordan-Wigner, parity, and Bravyi-Kitaev are all
//! induced by an invertible GF(2) matrix mapping Fock occupations to qubit
//! basis states.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A fixed-length bit vector over GF(2).
///
/// # Example
///
/// ```
/// use mathkit::BitVec;
///
/// let mut v = BitVec::zeros(10);
/// v.set(3, true);
/// v.set(7, true);
/// let mut w = BitVec::zeros(10);
/// w.set(3, true);
/// v.xor_assign(&w);
/// assert!(!v.get(3));
/// assert!(v.get(7));
/// assert_eq!(v.count_ones(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero bit vector of the given length.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Builds a bit vector from booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = BitVec::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Length in bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// In-place XOR with another vector of the same length.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= *b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Index of the lowest set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Dot product over GF(2): parity of the AND of the two vectors.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        write!(f, "]")
    }
}

/// A dense matrix over GF(2), stored as a list of [`BitVec`] rows.
///
/// # Example
///
/// ```
/// use mathkit::BitMatrix;
///
/// // The 2×2 identity has full rank and is its own inverse.
/// let m = BitMatrix::identity(2);
/// assert_eq!(m.rank(), 2);
/// assert_eq!(m.inverse().unwrap(), m);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BitVec>,
}

impl BitMatrix {
    /// Creates an all-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows,
            cols,
            data: vec![BitVec::zeros(cols); rows],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix from row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows differ in length.
    pub fn from_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        BitMatrix {
            rows: rows.len(),
            cols,
            data: rows,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.data[r].get(c)
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.data[r].set(c, value);
    }

    /// Borrows row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &BitVec {
        &self.data[r]
    }

    /// Matrix–vector product over GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = BitVec::zeros(self.rows);
        for (i, row) in self.data.iter().enumerate() {
            out.set(i, row.dot(v));
        }
        out
    }

    /// Rank via Gaussian elimination (non-destructive).
    pub fn rank(&self) -> usize {
        let mut rows = self.data.clone();
        let mut rank = 0;
        for col in 0..self.cols {
            // Find a pivot row at or below `rank` with a 1 in this column.
            let Some(pivot) = (rank..rows.len()).find(|&r| rows[r].get(col)) else {
                continue;
            };
            rows.swap(rank, pivot);
            let pivot_row = rows[rank].clone();
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && row.get(col) {
                    row.xor_assign(&pivot_row);
                }
            }
            rank += 1;
            if rank == rows.len() {
                break;
            }
        }
        rank
    }

    /// True when the rows are linearly independent over GF(2).
    pub fn rows_independent(&self) -> bool {
        self.rank() == self.rows
    }

    /// Inverse over GF(2), or `None` when the matrix is singular or not
    /// square.
    pub fn inverse(&self) -> Option<BitMatrix> {
        if self.rows != self.cols {
            return None;
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut inv = BitMatrix::identity(n).data;
        for col in 0..n {
            let pivot = (col..n).find(|&r| a[r].get(col))?;
            a.swap(col, pivot);
            inv.swap(col, pivot);
            let (a_pivot, inv_pivot) = (a[col].clone(), inv[col].clone());
            for r in 0..n {
                if r != col && a[r].get(col) {
                    a[r].xor_assign(&a_pivot);
                    inv[r].xor_assign(&inv_pivot);
                }
            }
        }
        Some(BitMatrix::from_rows(inv))
    }

    /// Solves `A·x = b` over GF(2), returning one solution if consistent.
    pub fn solve(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.rows, "dimension mismatch");
        // Augmented elimination.
        let mut rows: Vec<(BitVec, bool)> = self
            .data
            .iter()
            .cloned()
            .zip(b.iter_ones().fold(vec![false; self.rows], |mut acc, i| {
                acc[i] = true;
                acc
            }))
            .collect();
        let mut pivots: Vec<(usize, usize)> = Vec::new(); // (row, col)
        let mut rank = 0;
        for col in 0..self.cols {
            let Some(p) = (rank..rows.len()).find(|&r| rows[r].0.get(col)) else {
                continue;
            };
            rows.swap(rank, p);
            let (pr, pb) = (rows[rank].0.clone(), rows[rank].1);
            for (r, row) in rows.iter_mut().enumerate() {
                if r != rank && row.0.get(col) {
                    row.0.xor_assign(&pr);
                    row.1 ^= pb;
                }
            }
            pivots.push((rank, col));
            rank += 1;
        }
        // Inconsistent if a zero row has rhs = 1.
        if rows.iter().any(|(row, rhs)| row.is_zero() && *rhs) {
            return None;
        }
        let mut x = BitVec::zeros(self.cols);
        for &(r, c) in &pivots {
            x.set(c, rows[r].1);
        }
        Some(x)
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{}", if self.get(r, c) { '1' } else { '0' })?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bitvec_set_get_roundtrip() {
        let mut v = BitVec::zeros(130);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            v.set(i, true);
            assert!(v.get(i));
            v.set(i, false);
            assert!(!v.get(i));
        }
    }

    #[test]
    fn bitvec_dot_is_parity_of_overlap() {
        let a = BitVec::from_bools(&[true, true, false, true]);
        let b = BitVec::from_bools(&[true, false, true, true]);
        // overlap at indices 0 and 3 → even → false
        assert!(!a.dot(&b));
        let c = BitVec::from_bools(&[true, false, false, false]);
        assert!(a.dot(&c));
    }

    #[test]
    fn first_one_across_words() {
        let mut v = BitVec::zeros(200);
        assert_eq!(v.first_one(), None);
        v.set(130, true);
        assert_eq!(v.first_one(), Some(130));
        v.set(5, true);
        assert_eq!(v.first_one(), Some(5));
    }

    #[test]
    fn identity_has_full_rank() {
        for n in [1usize, 2, 7, 64, 65] {
            assert_eq!(BitMatrix::identity(n).rank(), n);
        }
    }

    #[test]
    fn dependent_rows_reduce_rank() {
        let r0 = BitVec::from_bools(&[true, false, true]);
        let r1 = BitVec::from_bools(&[false, true, true]);
        let mut r2 = r0.clone();
        r2.xor_assign(&r1); // r2 = r0 + r1
        let m = BitMatrix::from_rows(vec![r0, r1, r2]);
        assert_eq!(m.rank(), 2);
        assert!(!m.rows_independent());
    }

    #[test]
    fn inverse_round_trips() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in [2usize, 5, 16, 33] {
            // Generate a random invertible matrix by retrying.
            let m = loop {
                let mut m = BitMatrix::zeros(n, n);
                for r in 0..n {
                    for c in 0..n {
                        m.set(r, c, rng.gen_bool(0.5));
                    }
                }
                if m.rank() == n {
                    break m;
                }
            };
            let inv = m.inverse().expect("invertible by construction");
            // m · inv = I, checked column-by-column via mul_vec.
            for c in 0..n {
                let mut e = BitVec::zeros(n);
                e.set(c, true);
                let col = inv.mul_vec(&e); // actually inv row combination; see below
                let back = m.mul_vec(&col);
                // mul_vec computes A·x with x read as a column vector.
                assert_eq!(back, e, "column {c} failed for n={n}");
            }
        }
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = BitMatrix::zeros(3, 3);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn solve_finds_solutions_and_detects_inconsistency() {
        // A = [[1,1],[0,1]], b = (0,1) → x = (1,1).
        let a = BitMatrix::from_rows(vec![
            BitVec::from_bools(&[true, true]),
            BitVec::from_bools(&[false, true]),
        ]);
        let b = BitVec::from_bools(&[false, true]);
        let x = a.solve(&b).expect("consistent system");
        assert_eq!(a.mul_vec(&x), b);

        // Inconsistent: rows equal, rhs differs.
        let a2 = BitMatrix::from_rows(vec![
            BitVec::from_bools(&[true, false]),
            BitVec::from_bools(&[true, false]),
        ]);
        let b2 = BitVec::from_bools(&[true, false]);
        assert!(a2.solve(&b2).is_none());
    }

    proptest! {
        #[test]
        fn prop_rank_at_most_min_dim(bits in proptest::collection::vec(any::<bool>(), 36)) {
            let rows: Vec<BitVec> = bits.chunks(6).map(BitVec::from_bools).collect();
            let m = BitMatrix::from_rows(rows);
            prop_assert!(m.rank() <= 6);
        }

        #[test]
        fn prop_xor_self_is_zero(bits in proptest::collection::vec(any::<bool>(), 1..200)) {
            let v = BitVec::from_bools(&bits);
            let mut w = v.clone();
            w.xor_assign(&v);
            prop_assert!(w.is_zero());
        }

        #[test]
        fn prop_solve_is_verified(bits in proptest::collection::vec(any::<bool>(), 25), x_bits in proptest::collection::vec(any::<bool>(), 5)) {
            let rows: Vec<BitVec> = bits.chunks(5).map(BitVec::from_bools).collect();
            let m = BitMatrix::from_rows(rows);
            let x = BitVec::from_bools(&x_bits);
            let b = m.mul_vec(&x);
            // A solution must exist (x itself); any returned solution must verify.
            let got = m.solve(&b).expect("constructed to be consistent");
            prop_assert_eq!(m.mul_vec(&got), b);
        }
    }
}

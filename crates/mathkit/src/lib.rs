//! Self-contained numeric kernel for the Fermihedral reproduction.
//!
//! The crates in this workspace deliberately avoid external numeric
//! dependencies: everything the paper's evaluation pipeline needs from
//! NumPy/SciPy is rebuilt here.
//!
//! * [`Complex64`] — double-precision complex arithmetic.
//! * [`CMatrix`] — dense complex matrices (Hermitian checks, Kronecker
//!   products, adjoints, …).
//! * [`eigen`] — a cyclic Jacobi eigensolver for Hermitian matrices, used for
//!   exact diagonalization of qubit Hamiltonians and for eigenstate
//!   preparation in the noisy-simulation experiments.
//! * [`gf2`] — bit-packed GF(2) vectors and matrices with Gaussian
//!   elimination; algebraic independence of Majorana operator sets reduces to
//!   GF(2) linear independence of their symplectic rows.
//! * [`stats`] — summary statistics and least-squares line fits (the paper
//!   reports `a·log2(N) + b` regressions in Figures 6 and 7).
//!
//! # Example
//!
//! ```
//! use mathkit::{Complex64, CMatrix};
//!
//! let h = CMatrix::from_rows(&[
//!     vec![Complex64::new(1.0, 0.0), Complex64::new(0.0, -1.0)],
//!     vec![Complex64::new(0.0, 1.0), Complex64::new(-1.0, 0.0)],
//! ]);
//! assert!(h.is_hermitian(1e-12));
//! let eig = mathkit::eigen::eigh(&h);
//! assert!((eig.values[0] + 2f64.sqrt()).abs() < 1e-10);
//! ```

pub mod complex;
pub mod eigen;
pub mod gf2;
pub mod matrix;
pub mod stats;

pub use complex::Complex64;
pub use eigen::Eigh;
pub use gf2::{BitMatrix, BitVec};
pub use matrix::CMatrix;

//! Summary statistics and least-squares fits.
//!
//! The paper reports per-Majorana Pauli weights with `a·log₂(N) + b`
//! regression lines (Figures 6 and 7) and energy measurements with standard
//! deviations (Figures 8–10); this module provides those reductions.

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (dividing by `n`). Returns `0.0` for fewer than two
/// samples.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Result of a one-dimensional least-squares line fit `y ≈ slope·x +
/// intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r_squared: f64,
}

/// Ordinary least squares fit of `y = slope·x + intercept`.
///
/// Returns `None` when fewer than two points are given or all `x` are equal.
///
/// # Example
///
/// ```
/// use mathkit::stats::fit_line;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [3.1, 5.0, 6.9, 9.0];
/// let fit = fit_line(&xs, &ys).unwrap();
/// assert!((fit.slope - 1.97).abs() < 0.05);
/// assert!(fit.r_squared > 0.99);
/// ```
pub fn fit_line(xs: &[f64], ys: &[f64]) -> Option<LineFit> {
    assert_eq!(xs.len(), ys.len(), "fit_line needs equal-length slices");
    if xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (slope * x + intercept);
            e * e
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LineFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Fits `y = a·log₂(x) + b`, the model the paper uses for per-Majorana
/// Pauli weight versus mode count.
///
/// Returns `None` under the same conditions as [`fit_line`], or when any
/// `x ≤ 0`.
pub fn fit_log2(xs: &[f64], ys: &[f64]) -> Option<LineFit> {
    if xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let lx: Vec<f64> = xs.iter().map(|x| x.log2()).collect();
    fit_line(&lx, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(variance(&[5.0]), 0.0);
        let v = variance(&[1.0, 3.0]);
        assert!((v - 1.0).abs() < 1e-12);
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -0.5 * x + 4.0).collect();
        let fit = fit_line(&xs, &ys).unwrap();
        assert!((fit.slope + 0.5).abs() < 1e-12);
        assert!((fit.intercept - 4.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log2_model_recovered() {
        // y = 0.73·log2(x) + 0.94 — the paper's BK regression in Figure 6.
        let xs: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.73 * x.log2() + 0.94).collect();
        let fit = fit_log2(&xs, &ys).unwrap();
        assert!((fit.slope - 0.73).abs() < 1e-12);
        assert!((fit.intercept - 0.94).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(fit_line(&[1.0], &[2.0]).is_none());
        assert!(fit_line(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(fit_log2(&[0.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        let _ = fit_line(&[1.0, 2.0], &[1.0]);
    }
}

//! Dense complex matrices.
//!
//! Row-major storage, sized for the exact-diagonalization workloads in this
//! reproduction (≤ 2¹⁰ × 2¹⁰). The API favours clarity over cache blocking;
//! the hot paths of the simulator live in `qsim`, not here.

use crate::Complex64;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense complex matrix.
///
/// # Example
///
/// ```
/// use mathkit::{CMatrix, Complex64};
///
/// let x = CMatrix::from_rows(&[
///     vec![Complex64::ZERO, Complex64::ONE],
///     vec![Complex64::ONE, Complex64::ZERO],
/// ]);
/// let z = CMatrix::from_rows(&[
///     vec![Complex64::ONE, Complex64::ZERO],
///     vec![Complex64::ZERO, -Complex64::ONE],
/// ]);
/// // XZ = -iY, so XZ + ZX = 0: the anticommutator of X and Z vanishes.
/// let anti = &(&x * &z) + &(&z * &x);
/// assert!(anti.frobenius_norm() < 1e-12);
/// ```
#[derive(Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are not all the same length or `rows` is empty.
    pub fn from_rows(rows: &[Vec<Complex64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        CMatrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a diagonal matrix from the given entries.
    pub fn from_diag(diag: &[Complex64]) -> Self {
        let mut m = CMatrix::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow of the raw row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// A single row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Conjugate transpose `A†`.
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Plain transpose `Aᵀ`.
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Trace (sum of diagonal entries).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * k).collect(),
        }
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex64::ZERO {
                    continue;
                }
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Matrix–vector product `A·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        let mut out = vec![Complex64::ZERO; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = Complex64::ZERO;
            for (a, b) in row.iter().zip(v) {
                acc += *a * *b;
            }
            *o = acc;
        }
        out
    }

    /// Frobenius norm `sqrt(Σ|aᵢⱼ|²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus (max norm).
    pub fn max_norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// True when `‖A − A†‖∞ ≤ tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if !self[(i, j)].approx_eq(self[(j, i)].conj(), tol) {
                    return false;
                }
            }
        }
        true
    }

    /// True when `‖A†A − I‖∞ ≤ tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        let prod = &self.adjoint() * self;
        let eye = CMatrix::identity(self.rows);
        (&prod - &eye).max_norm() <= tol
    }

    /// True when every entry is within `tol` of the corresponding entry of
    /// `other`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// True when the two matrices are equal up to a global phase: there is a
    /// unit-modulus `λ` with `‖A − λB‖∞ ≤ tol`.
    ///
    /// Used to compare compiled circuit unitaries with reference matrices.
    pub fn approx_eq_up_to_phase(&self, other: &CMatrix, tol: f64) -> bool {
        if self.rows != other.rows || self.cols != other.cols {
            return false;
        }
        // Find the largest entry of `other` to estimate the phase robustly.
        let mut best = 0usize;
        let mut best_mag = 0.0;
        for (idx, z) in other.data.iter().enumerate() {
            if z.abs() > best_mag {
                best_mag = z.abs();
                best = idx;
            }
        }
        if best_mag <= tol {
            return self.max_norm() <= tol;
        }
        let lambda = self.data[best] / other.data[best];
        if (lambda.abs() - 1.0).abs() > 1e-6 {
            return false;
        }
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| a.approx_eq(*b * lambda, tol))
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Complex64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Complex64 {
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl fmt::Debug for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "CMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:.4}  ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn pauli_y() -> CMatrix {
        CMatrix::from_rows(&[
            vec![Complex64::ZERO, c(0.0, -1.0)],
            vec![c(0.0, 1.0), Complex64::ZERO],
        ])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let y = pauli_y();
        let eye = CMatrix::identity(2);
        assert!((&y * &eye).approx_eq(&y, 1e-15));
        assert!((&eye * &y).approx_eq(&y, 1e-15));
    }

    #[test]
    fn pauli_y_squares_to_identity() {
        let y = pauli_y();
        assert!((&y * &y).approx_eq(&CMatrix::identity(2), 1e-15));
        assert!(y.is_hermitian(1e-15));
        assert!(y.is_unitary(1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let y = pauli_y();
        let eye = CMatrix::identity(2);
        let m = y.kron(&eye);
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 4);
        assert_eq!(m[(0, 2)], c(0.0, -1.0));
        assert_eq!(m[(1, 3)], c(0.0, -1.0));
        assert_eq!(m[(0, 1)], Complex64::ZERO);
    }

    #[test]
    fn trace_of_identity() {
        assert_eq!(CMatrix::identity(5).trace(), c(5.0, 0.0));
    }

    #[test]
    fn adjoint_reverses_products() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 2.0), c(0.0, 1.0)],
            vec![c(3.0, 0.0), c(1.0, -1.0)],
        ]);
        let b = CMatrix::from_rows(&[
            vec![c(0.5, 0.0), c(2.0, 1.0)],
            vec![c(0.0, -2.0), c(1.0, 0.0)],
        ]);
        let lhs = (&a * &b).adjoint();
        let rhs = &b.adjoint() * &a.adjoint();
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn mul_vec_matches_matrix_product() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(0.0, 1.0)],
            vec![c(2.0, 0.0), c(0.0, 0.0)],
        ]);
        let v = vec![c(1.0, 1.0), c(2.0, 0.0)];
        let got = a.mul_vec(&v);
        assert!(got[0].approx_eq(c(1.0, 3.0), 1e-12));
        assert!(got[1].approx_eq(c(2.0, 2.0), 1e-12));
    }

    #[test]
    fn phase_equivalence_detects_global_phase() {
        let y = pauli_y();
        let rotated = y.scale(Complex64::from_polar(1.0, 0.7));
        assert!(rotated.approx_eq_up_to_phase(&y, 1e-12));
        assert!(!rotated.approx_eq(&y, 1e-12));
        let not_phase = y.scale(c(2.0, 0.0));
        assert!(!not_phase.approx_eq_up_to_phase(&y, 1e-12));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn product_dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = &a * &b;
    }
}

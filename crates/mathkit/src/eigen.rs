//! Hermitian eigendecomposition via the cyclic Jacobi method.
//!
//! The reproduction needs exact spectra of qubit Hamiltonians (≤ 2⁸ × 2⁸ in
//! the paper's end-to-end experiments) for two purposes:
//!
//! 1. verifying that a Fermion-to-qubit encoding is correct (the mapped
//!    Hamiltonian must be isospectral to the Fock-space reference), and
//! 2. preparing energy eigenstates `E₀ … E₃` as the initial states of the
//!    noisy simulations (Figures 8–10).
//!
//! Jacobi is slow compared to Householder+QR but is simple, numerically
//! robust, and trivially correct to validate — the right trade-off for a
//! self-contained research artifact.

use crate::{CMatrix, Complex64};

/// Result of a Hermitian eigendecomposition: `A = V · diag(values) · V†`.
#[derive(Debug, Clone)]
pub struct Eigh {
    /// Eigenvalues in ascending order.
    pub values: Vec<f64>,
    /// Unitary matrix whose `k`-th *column* is the eigenvector of
    /// `values[k]`.
    pub vectors: CMatrix,
}

impl Eigh {
    /// The eigenvector for `values[k]` as an owned vector.
    pub fn vector(&self, k: usize) -> Vec<Complex64> {
        (0..self.vectors.rows())
            .map(|i| self.vectors[(i, k)])
            .collect()
    }

    /// Reconstructs `V · diag(e^{i·values·t}) · V†`, i.e. the unitary
    /// `exp(iAt)` of the decomposed Hermitian matrix.
    pub fn exp_i(&self, t: f64) -> CMatrix {
        let n = self.values.len();
        let d: Vec<Complex64> = self
            .values
            .iter()
            .map(|&l| Complex64::from_polar(1.0, l * t))
            .collect();
        let mut vd = CMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                vd[(i, j)] = self.vectors[(i, j)] * d[j];
            }
        }
        &vd * &self.vectors.adjoint()
    }
}

/// Default off-diagonal convergence threshold, relative to the Frobenius
/// norm of the input.
const REL_TOL: f64 = 1e-13;
/// Hard cap on full Jacobi sweeps; converges in < 15 for our sizes.
const MAX_SWEEPS: usize = 60;

/// Eigendecomposition of a Hermitian matrix.
///
/// # Panics
///
/// Panics if `a` is not square or not Hermitian to `1e-9` (catching callers
/// that hand in a non-Hermitian operator is far more valuable here than
/// supporting them).
///
/// # Example
///
/// ```
/// use mathkit::{CMatrix, Complex64, eigen};
///
/// // Pauli X has eigenvalues ±1.
/// let x = CMatrix::from_rows(&[
///     vec![Complex64::ZERO, Complex64::ONE],
///     vec![Complex64::ONE, Complex64::ZERO],
/// ]);
/// let e = eigen::eigh(&x);
/// assert!((e.values[0] + 1.0).abs() < 1e-12);
/// assert!((e.values[1] - 1.0).abs() < 1e-12);
/// ```
pub fn eigh(a: &CMatrix) -> Eigh {
    assert!(a.is_square(), "eigh requires a square matrix");
    assert!(
        a.is_hermitian(1e-9),
        "eigh requires a Hermitian matrix (‖A−A†‖ too large)"
    );
    let n = a.rows();
    let mut h = a.clone();
    let mut v = CMatrix::identity(n);
    let scale = h.frobenius_norm().max(1e-300);
    let tol = REL_TOL * scale;

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += h[(p, q)].norm_sqr();
            }
        }
        if off.sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                jacobi_rotate(&mut h, &mut v, p, q);
            }
        }
    }

    // Extract, sort ascending, and permute the eigenvector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| h[(i, i)].re).collect();
    order.sort_by(|&i, &j| diag[i].partial_cmp(&diag[j]).expect("non-NaN eigenvalues"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vectors = CMatrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    Eigh { values, vectors }
}

/// Applies one complex Jacobi rotation zeroing `h[(p, q)]`, accumulating the
/// rotation into `v`.
fn jacobi_rotate(h: &mut CMatrix, v: &mut CMatrix, p: usize, q: usize) {
    let b = h[(p, q)];
    let absb = b.abs();
    if absb < 1e-300 {
        return;
    }
    let app = h[(p, p)].re;
    let aqq = h[(q, q)].re;
    let phi = b.arg();

    // Choose the rotation angle exactly as in the real Jacobi method, using
    // |b| in place of the off-diagonal element; the phase phi is absorbed
    // into the complex sine.
    let tau = (aqq - app) / (2.0 * absb);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let sigma = t * c;
    let s = Complex64::from_polar(sigma, phi);

    let n = h.rows();
    // Row update: row_p ← c·row_p − s·row_q ; row_q ← s̄·row_p + c·row_q.
    for k in 0..n {
        let hpk = h[(p, k)];
        let hqk = h[(q, k)];
        h[(p, k)] = hpk * c - s * hqk;
        h[(q, k)] = s.conj() * hpk + hqk * c;
    }
    // Column update: col_p ← c·col_p − s̄·col_q ; col_q ← s·col_p + c·col_q.
    for k in 0..n {
        let hkp = h[(k, p)];
        let hkq = h[(k, q)];
        h[(k, p)] = hkp * c - s.conj() * hkq;
        h[(k, q)] = s * hkp + hkq * c;
        let vkp = v[(k, p)];
        let vkq = v[(k, q)];
        v[(k, p)] = vkp * c - s.conj() * vkq;
        v[(k, q)] = s * vkp + vkq * c;
    }
    // Clean up the numerically tiny residue so convergence checks are exact.
    h[(p, q)] = Complex64::ZERO;
    h[(q, p)] = Complex64::ZERO;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    fn random_hermitian(n: usize, rng: &mut StdRng) -> CMatrix {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = c(rng.gen_range(-2.0..2.0), 0.0);
            for j in (i + 1)..n {
                let z = c(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                m[(i, j)] = z;
                m[(j, i)] = z.conj();
            }
        }
        m
    }

    fn check_decomposition(a: &CMatrix, e: &Eigh, tol: f64) {
        // A·v_k = λ_k·v_k for every k.
        let n = a.rows();
        for k in 0..n {
            let vk = e.vector(k);
            let av = a.mul_vec(&vk);
            for i in 0..n {
                assert!(
                    av[i].approx_eq(vk[i] * e.values[k], tol),
                    "eigenpair {k} violated at row {i}: {} vs {}",
                    av[i],
                    vk[i] * e.values[k]
                );
            }
        }
        assert!(e.vectors.is_unitary(1e-8), "eigenvector matrix not unitary");
        // Ascending order.
        for w in e.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn pauli_z_eigensystem() {
        let z = CMatrix::from_diag(&[Complex64::ONE, -Complex64::ONE]);
        let e = eigh(&z);
        assert!((e.values[0] + 1.0).abs() < 1e-14);
        assert!((e.values[1] - 1.0).abs() < 1e-14);
        check_decomposition(&z, &e, 1e-12);
    }

    #[test]
    fn pauli_y_eigensystem() {
        let y = CMatrix::from_rows(&[
            vec![Complex64::ZERO, c(0.0, -1.0)],
            vec![c(0.0, 1.0), Complex64::ZERO],
        ]);
        let e = eigh(&y);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        check_decomposition(&y, &e, 1e-10);
    }

    #[test]
    fn random_matrices_decompose() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [3usize, 8, 16, 32] {
            let a = random_hermitian(n, &mut rng);
            let e = eigh(&a);
            check_decomposition(&a, &e, 1e-7);
        }
    }

    #[test]
    fn eigenvalues_sum_to_trace() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = random_hermitian(12, &mut rng);
        let e = eigh(&a);
        let sum: f64 = e.values.iter().sum();
        assert!((sum - a.trace().re).abs() < 1e-9);
    }

    #[test]
    fn degenerate_spectrum_handled() {
        // diag(1, 1, -1) has a two-fold degenerate eigenvalue.
        let a = CMatrix::from_diag(&[Complex64::ONE, Complex64::ONE, -Complex64::ONE]);
        let e = eigh(&a);
        assert!((e.values[0] + 1.0).abs() < 1e-14);
        assert!((e.values[1] - 1.0).abs() < 1e-14);
        assert!((e.values[2] - 1.0).abs() < 1e-14);
        check_decomposition(&a, &e, 1e-12);
    }

    #[test]
    fn exp_i_gives_unitary_evolution() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_hermitian(6, &mut rng);
        let e = eigh(&a);
        let u = e.exp_i(0.37);
        assert!(u.is_unitary(1e-8));
        // exp(iA·0) = I.
        assert!(e.exp_i(0.0).approx_eq(&CMatrix::identity(6), 1e-9));
        // exp(iAt)·exp(-iAt) = I.
        let back = e.exp_i(-0.37);
        assert!((&u * &back).approx_eq(&CMatrix::identity(6), 1e-8));
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn rejects_non_hermitian() {
        let m = CMatrix::from_rows(&[
            vec![Complex64::ZERO, Complex64::ONE],
            vec![Complex64::ZERO, Complex64::ZERO],
        ]);
        let _ = eigh(&m);
    }
}

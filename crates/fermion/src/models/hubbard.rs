//! The Fermi-Hubbard model on 1-D chains and 2-D grids.
//!
//! The paper's condensed-matter benchmark (Figure 5):
//!
//! ```text
//! H = −t Σ_{⟨i,j⟩,σ} (a†_{iσ} a_{jσ} + a†_{jσ} a_{iσ}) + U Σ_i n_{i↑} n_{i↓}
//! ```
//!
//! with periodic boundary conditions. The end-to-end experiments use the
//! 3×1 chain (6 qubits) and the 2×2 grid (8 qubits).

use crate::ops::{FermionHamiltonian, FermionOp, FermionTerm};
use mathkit::Complex64;
use std::collections::BTreeSet;

/// Site connectivity of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lattice {
    /// A 1-D chain of `sites` sites.
    Chain {
        /// Number of sites (≥ 1).
        sites: usize,
        /// Wrap the last site to the first.
        periodic: bool,
    },
    /// A 2-D rectangular grid, row-major site numbering.
    Grid {
        /// Number of rows (≥ 1).
        rows: usize,
        /// Number of columns (≥ 1).
        cols: usize,
        /// Wrap both dimensions (torus).
        periodic: bool,
    },
}

impl Lattice {
    /// Number of lattice sites.
    pub fn num_sites(&self) -> usize {
        match *self {
            Lattice::Chain { sites, .. } => sites,
            Lattice::Grid { rows, cols, .. } => rows * cols,
        }
    }

    /// Undirected nearest-neighbour edges, de-duplicated and sorted.
    /// (On small periodic lattices wrap-around edges can coincide with
    /// interior ones; each pair appears once.)
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut set: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut insert = |a: usize, b: usize| {
            if a != b {
                set.insert((a.min(b), a.max(b)));
            }
        };
        match *self {
            Lattice::Chain { sites, periodic } => {
                for i in 0..sites.saturating_sub(1) {
                    insert(i, i + 1);
                }
                if periodic && sites > 1 {
                    insert(sites - 1, 0);
                }
            }
            Lattice::Grid {
                rows,
                cols,
                periodic,
            } => {
                let site = |r: usize, c: usize| r * cols + c;
                for r in 0..rows {
                    for c in 0..cols {
                        if c + 1 < cols {
                            insert(site(r, c), site(r, c + 1));
                        } else if periodic && cols > 1 {
                            insert(site(r, c), site(r, 0));
                        }
                        if r + 1 < rows {
                            insert(site(r, c), site(r + 1, c));
                        } else if periodic && rows > 1 {
                            insert(site(r, c), site(0, c));
                        }
                    }
                }
            }
        }
        set.into_iter().collect()
    }
}

/// How (site, spin) pairs map to Fermionic mode indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpinLayout {
    /// `mode = 2·site + spin` (spin-minor; Qiskit-Nature's lattice
    /// convention).
    #[default]
    Interleaved,
    /// `mode = site + num_sites·spin` (all ↑ first).
    Blocked,
}

/// A Fermi-Hubbard model instance.
///
/// # Example
///
/// ```
/// use fermion::models::{FermiHubbard, Lattice};
///
/// // The paper's 3×1 benchmark: 3 sites, PBC, 6 qubits.
/// let model = FermiHubbard::new(
///     Lattice::Chain { sites: 3, periodic: true },
///     1.0,
///     2.0,
/// );
/// assert_eq!(model.num_modes(), 6);
/// let h = model.hamiltonian();
/// assert!(h.is_hermitian());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FermiHubbard {
    lattice: Lattice,
    t: f64,
    u: f64,
    layout: SpinLayout,
}

impl FermiHubbard {
    /// Creates a model with hopping `t` and on-site repulsion `u`.
    pub fn new(lattice: Lattice, t: f64, u: f64) -> FermiHubbard {
        FermiHubbard {
            lattice,
            t,
            u,
            layout: SpinLayout::default(),
        }
    }

    /// Selects a different spin-to-mode layout.
    pub fn with_layout(mut self, layout: SpinLayout) -> FermiHubbard {
        self.layout = layout;
        self
    }

    /// The lattice.
    pub fn lattice(&self) -> Lattice {
        self.lattice
    }

    /// Number of Fermionic modes (= qubits) — two spins per site.
    pub fn num_modes(&self) -> usize {
        2 * self.lattice.num_sites()
    }

    /// Mode index of `(site, spin)` (`spin` ∈ {0 = ↑, 1 = ↓}).
    pub fn mode(&self, site: usize, spin: usize) -> usize {
        debug_assert!(spin < 2);
        match self.layout {
            SpinLayout::Interleaved => 2 * site + spin,
            SpinLayout::Blocked => site + self.lattice.num_sites() * spin,
        }
    }

    /// Builds the second-quantized Hamiltonian.
    pub fn hamiltonian(&self) -> FermionHamiltonian {
        let mut h = FermionHamiltonian::new(self.num_modes());
        for (i, j) in self.lattice.edges() {
            for spin in 0..2 {
                h.add_hopping(self.mode(i, spin), self.mode(j, spin), -self.t);
            }
        }
        for site in 0..self.lattice.num_sites() {
            let up = self.mode(site, 0);
            let dn = self.mode(site, 1);
            h.add_term(FermionTerm::new(
                Complex64::from_re(self.u),
                vec![
                    FermionOp::creation(up),
                    FermionOp::annihilation(up),
                    FermionOp::creation(dn),
                    FermionOp::annihilation(dn),
                ],
            ));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::hamiltonian_matrix;
    use mathkit::eigen::eigh;

    #[test]
    fn chain_edges() {
        let open = Lattice::Chain {
            sites: 4,
            periodic: false,
        };
        assert_eq!(open.edges(), vec![(0, 1), (1, 2), (2, 3)]);
        let pbc = Lattice::Chain {
            sites: 3,
            periodic: true,
        };
        assert_eq!(pbc.edges(), vec![(0, 1), (0, 2), (1, 2)]);
        // Two-site periodic chain degenerates to a single edge.
        let tiny = Lattice::Chain {
            sites: 2,
            periodic: true,
        };
        assert_eq!(tiny.edges(), vec![(0, 1)]);
    }

    #[test]
    fn grid_edges_2x2_torus() {
        let grid = Lattice::Grid {
            rows: 2,
            cols: 2,
            periodic: true,
        };
        // Wrap edges coincide with interior ones on 2×2: exactly 4 edges.
        assert_eq!(grid.edges(), vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn grid_edges_3x2_open() {
        let grid = Lattice::Grid {
            rows: 3,
            cols: 2,
            periodic: false,
        };
        // 3 vertical pairs per column × 2? — enumerate: rows of 2, cols of 3.
        let edges = grid.edges();
        assert_eq!(edges.len(), 7);
        assert!(edges.contains(&(0, 1)) && edges.contains(&(2, 3)) && edges.contains(&(4, 5)));
        assert!(edges.contains(&(0, 2)) && edges.contains(&(2, 4)));
    }

    #[test]
    fn mode_layouts() {
        let m = FermiHubbard::new(
            Lattice::Chain {
                sites: 3,
                periodic: true,
            },
            1.0,
            4.0,
        );
        assert_eq!(m.mode(2, 1), 5); // interleaved
        let b = m.clone().with_layout(SpinLayout::Blocked);
        assert_eq!(b.mode(2, 1), 5);
        assert_eq!(b.mode(0, 1), 3);
        assert_eq!(m.mode(0, 1), 1);
    }

    #[test]
    fn hamiltonian_term_counts() {
        // 3-site PBC chain: 3 edges × 2 spins × 2 directions = 12 hopping
        // terms + 3 interaction terms.
        let model = FermiHubbard::new(
            Lattice::Chain {
                sites: 3,
                periodic: true,
            },
            1.0,
            2.0,
        );
        let h = model.hamiltonian();
        assert_eq!(h.terms().len(), 15);
        assert!(h.is_hermitian());
    }

    #[test]
    fn dimer_singlet_energy_analytic() {
        // Open 2-site Hubbard at U=8,t=1: the half-filled singlet energy
        // (U − sqrt(U²+16t²))/2 is in the spectrum.
        let model = FermiHubbard::new(
            Lattice::Chain {
                sites: 2,
                periodic: false,
            },
            1.0,
            8.0,
        );
        let m = hamiltonian_matrix(&model.hamiltonian());
        let eig = eigh(&m);
        let expect = (8.0 - (64.0f64 + 16.0).sqrt()) / 2.0;
        let closest = eig
            .values
            .iter()
            .map(|v| (v - expect).abs())
            .fold(f64::INFINITY, f64::min);
        assert!(closest < 1e-9, "singlet energy {expect} not in spectrum");
    }

    #[test]
    fn layouts_are_isospectral() {
        let base = FermiHubbard::new(
            Lattice::Chain {
                sites: 3,
                periodic: true,
            },
            1.0,
            4.0,
        );
        let ea = eigh(&hamiltonian_matrix(&base.hamiltonian())).values;
        let eb = eigh(&hamiltonian_matrix(
            &base.clone().with_layout(SpinLayout::Blocked).hamiltonian(),
        ))
        .values;
        for (a, b) in ea.iter().zip(&eb) {
            assert!((a - b).abs() < 1e-8);
        }
    }
}

//! Molecular electronic-structure Hamiltonians.
//!
//! The paper's quantum-chemistry benchmark (Figure 5):
//!
//! ```text
//! H = Σ_pq h_pq a†_p a_q + ½ Σ_pqrs ⟨pq|rs⟩ a†_p a†_q a_s a_r
//! ```
//!
//! Spatial integrals are stored in chemists' notation `(pq|rs)` with the
//! 8-fold permutational symmetry of real orbitals; the physicists'
//! two-electron coefficient is `⟨PQ|RS⟩ = (pr|qs)·δ(σ_P,σ_R)·δ(σ_Q,σ_S)`.
//!
//! The H₂/STO-3G integrals at the 0.7414 Å equilibrium geometry are
//! embedded as published constants (the values a PySCF/Qiskit-Nature run
//! produces — see DESIGN.md, substitution #3), so the 4-qubit benchmark of
//! the paper's Figures 8/10 and Table 4 is bit-for-bit reproducible without
//! a chemistry stack.

use crate::ops::{FermionHamiltonian, FermionOp, FermionTerm};
use mathkit::Complex64;
use rand::Rng;

/// How spatial orbitals with spin map onto Fermionic mode indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpinOrbitalOrder {
    /// `mode = orbital + n_orbitals·spin` — all α spins first (the
    /// Qiskit-Nature convention; the paper's toolchain).
    #[default]
    Blocked,
    /// `mode = 2·orbital + spin` — spins interleaved per orbital.
    Interleaved,
}

/// One- and two-electron integrals of a molecule in a given basis.
///
/// # Example
///
/// ```
/// use fermion::models::MolecularIntegrals;
///
/// let h2 = MolecularIntegrals::h2_sto3g();
/// assert_eq!(h2.num_orbitals(), 2);
/// assert_eq!(h2.num_spin_orbitals(), 4);
/// let hamiltonian = h2.to_hamiltonian(Default::default());
/// assert!(hamiltonian.is_hermitian());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MolecularIntegrals {
    num_orbitals: usize,
    /// `h1[p·n + q]`, symmetric.
    h1: Vec<f64>,
    /// `(pq|rs)` chemists' notation, flattened `((p·n + q)·n + r)·n + s`.
    h2: Vec<f64>,
    nuclear_repulsion: f64,
}

impl MolecularIntegrals {
    /// Wraps raw integral arrays.
    ///
    /// # Panics
    ///
    /// Panics if array lengths don't match `n²`/`n⁴`, or the required
    /// symmetries (`h_pq = h_qp`, 8-fold for `(pq|rs)`) are violated beyond
    /// `1e-10`.
    pub fn new(num_orbitals: usize, h1: Vec<f64>, h2: Vec<f64>, nuclear_repulsion: f64) -> Self {
        let n = num_orbitals;
        assert!(n > 0, "need at least one orbital");
        assert_eq!(h1.len(), n * n, "h1 must be n×n");
        assert_eq!(h2.len(), n * n * n * n, "h2 must be n⁴");
        let ints = MolecularIntegrals {
            num_orbitals,
            h1,
            h2,
            nuclear_repulsion,
        };
        for p in 0..n {
            for q in 0..n {
                assert!(
                    (ints.h1(p, q) - ints.h1(q, p)).abs() < 1e-10,
                    "h1 must be symmetric"
                );
                for r in 0..n {
                    for s in 0..n {
                        let v = ints.h2(p, q, r, s);
                        for w in [
                            ints.h2(q, p, r, s),
                            ints.h2(p, q, s, r),
                            ints.h2(r, s, p, q),
                        ] {
                            assert!((v - w).abs() < 1e-10, "(pq|rs) symmetry violated");
                        }
                    }
                }
            }
        }
        ints
    }

    /// The published H₂/STO-3G integrals at R = 0.7414 Å (Hartree).
    pub fn h2_sto3g() -> MolecularIntegrals {
        let n = 2;
        let mut h1 = vec![0.0; n * n];
        h1[0] = -1.252477495; // bonding orbital
        h1[3] = -0.475934275; // antibonding orbital
        let mut h2 = vec![0.0; n * n * n * n];
        let mut set = |p: usize, q: usize, r: usize, s: usize, v: f64| {
            // Apply the 8-fold symmetry of real orbitals.
            let perms = [
                (p, q, r, s),
                (q, p, r, s),
                (p, q, s, r),
                (q, p, s, r),
                (r, s, p, q),
                (s, r, p, q),
                (r, s, q, p),
                (s, r, q, p),
            ];
            for (a, b, c, d) in perms {
                h2[((a * n + b) * n + c) * n + d] = v;
            }
        };
        set(0, 0, 0, 0, 0.674493166);
        set(1, 1, 1, 1, 0.697397010);
        set(0, 0, 1, 1, 0.663472101);
        set(0, 1, 0, 1, 0.181287518);
        MolecularIntegrals::new(n, h1, h2, 0.713753980)
    }

    /// Synthetic integrals with full O(N⁴) structure, for scaling
    /// experiments beyond H₂ (Tables 4–5 evaluate electronic structure at up
    /// to 12 modes; only the *term structure* affects Pauli weight, so
    /// random symmetric values suffice — see DESIGN.md).
    pub fn synthetic(num_orbitals: usize, rng: &mut impl Rng) -> MolecularIntegrals {
        let n = num_orbitals;
        let mut h1 = vec![0.0; n * n];
        for p in 0..n {
            for q in 0..=p {
                let v = rng.gen_range(-1.0..1.0);
                h1[p * n + q] = v;
                h1[q * n + p] = v;
            }
        }
        let mut h2 = vec![0.0; n * n * n * n];
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        let idx = ((p * n + q) * n + r) * n + s;
                        if h2[idx] != 0.0 {
                            continue;
                        }
                        let v = rng.gen_range(-1.0..1.0);
                        for (a, b, c, d) in [
                            (p, q, r, s),
                            (q, p, r, s),
                            (p, q, s, r),
                            (q, p, s, r),
                            (r, s, p, q),
                            (s, r, p, q),
                            (r, s, q, p),
                            (s, r, q, p),
                        ] {
                            h2[((a * n + b) * n + c) * n + d] = v;
                        }
                    }
                }
            }
        }
        MolecularIntegrals::new(n, h1, h2, 0.0)
    }

    /// Number of spatial orbitals.
    pub fn num_orbitals(&self) -> usize {
        self.num_orbitals
    }

    /// Number of spin orbitals (= Fermionic modes = qubits).
    pub fn num_spin_orbitals(&self) -> usize {
        2 * self.num_orbitals
    }

    /// One-electron integral `h_pq`.
    pub fn h1(&self, p: usize, q: usize) -> f64 {
        self.h1[p * self.num_orbitals + q]
    }

    /// Two-electron integral `(pq|rs)` in chemists' notation.
    pub fn h2(&self, p: usize, q: usize, r: usize, s: usize) -> f64 {
        let n = self.num_orbitals;
        self.h2[((p * n + q) * n + r) * n + s]
    }

    /// The constant nuclear-repulsion energy (not included in the
    /// electronic Hamiltonian).
    pub fn nuclear_repulsion(&self) -> f64 {
        self.nuclear_repulsion
    }

    /// Builds the electronic Hamiltonian over spin orbitals.
    pub fn to_hamiltonian(&self, order: SpinOrbitalOrder) -> FermionHamiltonian {
        let n = self.num_orbitals;
        let mode = |orbital: usize, spin: usize| match order {
            SpinOrbitalOrder::Blocked => orbital + n * spin,
            SpinOrbitalOrder::Interleaved => 2 * orbital + spin,
        };
        let mut h = FermionHamiltonian::new(2 * n);
        // One-body: Σ h_pq a†_{pσ} a_{qσ}.
        for p in 0..n {
            for q in 0..n {
                let v = self.h1(p, q);
                if v.abs() < 1e-14 {
                    continue;
                }
                for spin in 0..2 {
                    h.add_term(FermionTerm::new(
                        Complex64::from_re(v),
                        vec![
                            FermionOp::creation(mode(p, spin)),
                            FermionOp::annihilation(mode(q, spin)),
                        ],
                    ));
                }
            }
        }
        // Two-body: ½ Σ ⟨PQ|RS⟩ a†_P a†_Q a_S a_R with
        // ⟨PQ|RS⟩ = (pr|qs) δ(σP,σR) δ(σQ,σS).
        for p in 0..n {
            for q in 0..n {
                for r in 0..n {
                    for s in 0..n {
                        let v = self.h2(p, r, q, s); // (pr|qs)
                        if v.abs() < 1e-14 {
                            continue;
                        }
                        for sigma in 0..2 {
                            for tau in 0..2 {
                                let cp = mode(p, sigma);
                                let cq = mode(q, tau);
                                let as_ = mode(s, tau);
                                let ar = mode(r, sigma);
                                if cp == cq || as_ == ar {
                                    continue; // a†a† or aa on the same mode is 0
                                }
                                h.add_term(FermionTerm::new(
                                    Complex64::from_re(0.5 * v),
                                    vec![
                                        FermionOp::creation(cp),
                                        FermionOp::creation(cq),
                                        FermionOp::annihilation(as_),
                                        FermionOp::annihilation(ar),
                                    ],
                                ));
                            }
                        }
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::hamiltonian_matrix;
    use mathkit::eigen::eigh;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The FCI electronic ground energy of H₂/STO-3G at 0.7414 Å.
    const H2_FCI_ELECTRONIC: f64 = -1.851046;

    #[test]
    fn h2_integrals_have_symmetries() {
        let h2 = MolecularIntegrals::h2_sto3g();
        assert!((h2.h2(0, 0, 1, 1) - h2.h2(1, 1, 0, 0)).abs() < 1e-12);
        assert!((h2.h2(0, 1, 0, 1) - h2.h2(1, 0, 1, 0)).abs() < 1e-12);
        assert!((h2.nuclear_repulsion() - 0.71375398).abs() < 1e-8);
    }

    #[test]
    fn h2_hamiltonian_reproduces_fci_energy() {
        for order in [SpinOrbitalOrder::Blocked, SpinOrbitalOrder::Interleaved] {
            let h = MolecularIntegrals::h2_sto3g().to_hamiltonian(order);
            assert_eq!(h.num_modes(), 4);
            assert!(h.is_hermitian());
            let m = hamiltonian_matrix(&h);
            assert!(m.is_hermitian(1e-10));
            let eig = eigh(&m);
            assert!(
                (eig.values[0] - H2_FCI_ELECTRONIC).abs() < 2e-4,
                "{order:?}: ground energy {} vs FCI {}",
                eig.values[0],
                H2_FCI_ELECTRONIC
            );
        }
    }

    #[test]
    fn h2_ground_state_has_two_electrons() {
        let h = MolecularIntegrals::h2_sto3g().to_hamiltonian(SpinOrbitalOrder::Blocked);
        let m = hamiltonian_matrix(&h);
        let eig = eigh(&m);
        let ground = eig.vector(0);
        // Expectation of the number operator = Σ_x |ψ_x|²·popcount(x).
        let n_avg: f64 = ground
            .iter()
            .enumerate()
            .map(|(x, amp)| amp.norm_sqr() * (x.count_ones() as f64))
            .sum();
        assert!((n_avg - 2.0).abs() < 1e-8, "⟨N⟩ = {n_avg}");
    }

    #[test]
    fn orderings_are_isospectral() {
        let ints = MolecularIntegrals::h2_sto3g();
        let ma = hamiltonian_matrix(&ints.to_hamiltonian(SpinOrbitalOrder::Blocked));
        let mb = hamiltonian_matrix(&ints.to_hamiltonian(SpinOrbitalOrder::Interleaved));
        let ea = eigh(&ma).values;
        let eb = eigh(&mb).values;
        for (a, b) in ea.iter().zip(&eb) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn synthetic_structure_is_hermitian_and_dense() {
        let mut rng = StdRng::seed_from_u64(12);
        let ints = MolecularIntegrals::synthetic(3, &mut rng);
        let h = ints.to_hamiltonian(SpinOrbitalOrder::Blocked);
        assert_eq!(h.num_modes(), 6);
        assert!(h.is_hermitian());
        // O(N⁴) structure: plenty of two-body terms.
        assert!(h.terms().len() > 100);
        let m = hamiltonian_matrix(&h);
        assert!(m.is_hermitian(1e-9));
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_h1_rejected() {
        let _ = MolecularIntegrals::new(2, vec![0.0, 1.0, 0.0, 0.0], vec![0.0; 16], 0.0);
    }
}

//! The four-body Sachdev-Ye-Kitaev (SYK) model.
//!
//! The paper's quantum-field-theory benchmark (Figure 5):
//!
//! ```text
//! H = (1 / (4·4!)) Σ_{ijkl} g_ijkl · M_i M_j M_k M_l
//! ```
//!
//! over `2N` Majorana operators with independent Gaussian couplings. Summing
//! over ordered index quadruples `i<j<k<l` absorbs the combinatorial
//! prefactor; the couplings then have variance `3!·J²/(2N)³`.
//!
//! SYK is *strongly interacting*: every quadruple of Majorana operators
//! appears, which is why it stresses Hamiltonian-dependent encodings the
//! most (largest Table 4 reductions in the paper).

use crate::majorana::{MajoranaMonomial, MajoranaSum};
use mathkit::Complex64;
use rand::Rng;

/// A four-body SYK model over `2·num_modes` Majorana operators.
///
/// # Example
///
/// ```
/// use fermion::models::SykModel;
/// use rand::SeedableRng;
///
/// let model = SykModel::new(3, 1.0);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let h = model.sample(&mut rng);
/// // C(6,4) = 15 quadruples over 6 Majorana operators.
/// assert_eq!(h.len(), 15);
/// assert!(h.is_hermitian(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SykModel {
    num_modes: usize,
    coupling: f64,
}

impl SykModel {
    /// Creates a model with `num_modes` Fermionic modes (`2·num_modes`
    /// Majorana operators) and coupling scale `J`.
    ///
    /// # Panics
    ///
    /// Panics if `num_modes < 2` (fewer than 4 Majorana operators admit no
    /// quadruple).
    pub fn new(num_modes: usize, coupling: f64) -> SykModel {
        assert!(num_modes >= 2, "SYK needs at least 4 Majorana operators");
        SykModel {
            num_modes,
            coupling,
        }
    }

    /// Number of Fermionic modes.
    pub fn num_modes(&self) -> usize {
        self.num_modes
    }

    /// Number of Majorana operators (`2 × modes`).
    pub fn num_majoranas(&self) -> usize {
        2 * self.num_modes
    }

    /// Number of interaction terms, `C(2N, 4)`.
    pub fn num_terms(&self) -> usize {
        let m = self.num_majoranas();
        m * (m - 1) * (m - 2) * (m - 3) / 24
    }

    /// The de-duplicated monomial structure (all quadruples) without
    /// sampling couplings — sufficient for the Pauli-weight objective, which
    /// ignores coefficients.
    pub fn monomials(&self) -> Vec<MajoranaMonomial> {
        let m = self.num_majoranas() as u32;
        let mut out = Vec::with_capacity(self.num_terms());
        for i in 0..m {
            for j in (i + 1)..m {
                for k in (j + 1)..m {
                    for l in (k + 1)..m {
                        out.push(MajoranaMonomial::from_sorted(vec![i, j, k, l]));
                    }
                }
            }
        }
        out
    }

    /// Samples Gaussian couplings and returns the full Hamiltonian.
    pub fn sample(&self, rng: &mut impl Rng) -> MajoranaSum {
        let m = self.num_majoranas();
        // Var(J_ijkl) = 3!·J²/(2N)³ for the i<j<k<l normalization.
        let sigma = (6.0 * self.coupling * self.coupling / (m * m * m) as f64).sqrt();
        let mut sum = MajoranaSum::new(self.num_modes);
        for mono in self.monomials() {
            let g = sigma * standard_normal(rng);
            sum.add_monomial(mono, Complex64::from_re(g));
        }
        sum
    }
}

/// Standard normal sample via the Box-Muller transform (`rand` 0.8 has no
/// Gaussian distribution without the `rand_distr` crate).
fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fock::majorana_sum_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn term_count_is_binomial() {
        assert_eq!(SykModel::new(2, 1.0).num_terms(), 1); // C(4,4)
        assert_eq!(SykModel::new(3, 1.0).num_terms(), 15); // C(6,4)
        assert_eq!(SykModel::new(4, 1.0).num_terms(), 70); // C(8,4)
        assert_eq!(SykModel::new(5, 1.0).num_terms(), 210); // C(10,4)
    }

    #[test]
    fn monomials_are_distinct_quadruples() {
        let model = SykModel::new(3, 1.0);
        let monos = model.monomials();
        assert_eq!(monos.len(), model.num_terms());
        for m in &monos {
            assert_eq!(m.degree(), 4);
        }
        let set: std::collections::BTreeSet<_> = monos.iter().collect();
        assert_eq!(set.len(), monos.len());
    }

    #[test]
    fn sampled_hamiltonian_is_hermitian_matrix() {
        let model = SykModel::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let h = model.sample(&mut rng);
        assert!(h.is_hermitian(1e-12));
        let m = majorana_sum_matrix(&h);
        assert!(m.is_hermitian(1e-9));
        // SYK is traceless (no identity monomial).
        assert!(m.trace().abs() < 1e-9);
    }

    #[test]
    fn coupling_statistics_roughly_gaussian() {
        let model = SykModel::new(4, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut values = Vec::new();
        for _ in 0..30 {
            let h = model.sample(&mut rng);
            for (_, c) in h.iter() {
                values.push(c.re);
            }
        }
        let mean = mathkit::stats::mean(&values);
        let sd = mathkit::stats::stddev(&values);
        let expect_sd = (6.0f64 / 512.0).sqrt();
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!(
            (sd - expect_sd).abs() < 0.2 * expect_sd,
            "sd {sd} vs {expect_sd}"
        );
    }

    #[test]
    fn samples_differ_across_seeds() {
        let model = SykModel::new(2, 1.0);
        let h1 = model.sample(&mut StdRng::seed_from_u64(1));
        let h2 = model.sample(&mut StdRng::seed_from_u64(2));
        assert_ne!(h1, h2);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_model_rejected() {
        let _ = SykModel::new(1, 1.0);
    }
}

//! The paper's benchmark Hamiltonian families (Figure 5).
//!
//! * [`molecular`] — molecular electronic structure (quantum chemistry):
//!   embedded H₂/STO-3G integrals plus a synthetic generator reproducing the
//!   O(N⁴) term structure at arbitrary size.
//! * [`hubbard`] — the 1-D/2-D Fermi-Hubbard model with periodic boundary
//!   conditions (condensed matter).
//! * [`syk`] — the four-body Sachdev-Ye-Kitaev model (quantum field
//!   theory), expressed directly over Majorana operators.

pub mod hubbard;
pub mod molecular;
pub mod syk;

pub use hubbard::{FermiHubbard, Lattice, SpinLayout};
pub use molecular::MolecularIntegrals;
pub use syk::SykModel;

//! Creation/annihilation operators, terms, and second-quantized
//! Hamiltonians.

use mathkit::Complex64;
use std::fmt;

/// A single creation (`a†`) or annihilation (`a`) operator on one mode.
///
/// # Example
///
/// ```
/// use fermion::FermionOp;
///
/// let c = FermionOp::creation(2);
/// assert!(c.is_creation());
/// assert_eq!(c.mode(), 2);
/// assert_eq!(c.adjoint(), FermionOp::annihilation(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FermionOp {
    mode: u32,
    dagger: bool,
}

impl FermionOp {
    /// The creation operator `a†_mode`.
    pub fn creation(mode: usize) -> FermionOp {
        FermionOp {
            mode: mode as u32,
            dagger: true,
        }
    }

    /// The annihilation operator `a_mode`.
    pub fn annihilation(mode: usize) -> FermionOp {
        FermionOp {
            mode: mode as u32,
            dagger: false,
        }
    }

    /// The mode this operator acts on.
    pub fn mode(self) -> usize {
        self.mode as usize
    }

    /// True for `a†`.
    pub fn is_creation(self) -> bool {
        self.dagger
    }

    /// Hermitian conjugate.
    pub fn adjoint(self) -> FermionOp {
        FermionOp {
            mode: self.mode,
            dagger: !self.dagger,
        }
    }
}

impl fmt::Display for FermionOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dagger {
            write!(f, "a†{}", self.mode)
        } else {
            write!(f, "a{}", self.mode)
        }
    }
}

/// A product of Fermionic operators with a complex coefficient, e.g.
/// `0.5·a†₀a†₁a₂a₃`. Operators are stored in writing order: `ops[0]` is
/// applied *last* to a ket.
#[derive(Debug, Clone, PartialEq)]
pub struct FermionTerm {
    /// Complex prefactor.
    pub coeff: Complex64,
    /// Operator product, leftmost first.
    pub ops: Vec<FermionOp>,
}

impl FermionTerm {
    /// Builds a term.
    pub fn new(coeff: Complex64, ops: Vec<FermionOp>) -> FermionTerm {
        FermionTerm { coeff, ops }
    }

    /// The identity term with the given coefficient.
    pub fn constant(coeff: Complex64) -> FermionTerm {
        FermionTerm { coeff, ops: vec![] }
    }

    /// Hermitian conjugate: reverses the product, flips daggers, conjugates
    /// the coefficient.
    pub fn adjoint(&self) -> FermionTerm {
        FermionTerm {
            coeff: self.coeff.conj(),
            ops: self.ops.iter().rev().map(|o| o.adjoint()).collect(),
        }
    }

    /// True when the term is structurally equal to its own adjoint.
    pub fn is_self_adjoint(&self) -> bool {
        *self == self.adjoint()
    }

    /// Highest mode index mentioned, if any.
    pub fn max_mode(&self) -> Option<usize> {
        self.ops.iter().map(|o| o.mode()).max()
    }
}

impl fmt::Display for FermionTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.coeff)?;
        for op in &self.ops {
            write!(f, "·{op}")?;
        }
        Ok(())
    }
}

/// A second-quantized Hamiltonian: a sum of [`FermionTerm`]s over a fixed
/// number of modes.
///
/// # Example
///
/// ```
/// use fermion::{FermionHamiltonian, FermionOp};
/// use mathkit::Complex64;
///
/// // Hopping between modes 0 and 1: -t(a†₀a₁ + a†₁a₀)
/// let mut h = FermionHamiltonian::new(2);
/// h.add_hopping(0, 1, 1.5);
/// assert_eq!(h.terms().len(), 2);
/// assert!(h.is_hermitian());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FermionHamiltonian {
    num_modes: usize,
    terms: Vec<FermionTerm>,
}

impl FermionHamiltonian {
    /// An empty Hamiltonian on `num_modes` modes.
    ///
    /// # Panics
    ///
    /// Panics if `num_modes == 0`.
    pub fn new(num_modes: usize) -> FermionHamiltonian {
        assert!(num_modes > 0, "Hamiltonian needs at least one mode");
        FermionHamiltonian {
            num_modes,
            terms: Vec::new(),
        }
    }

    /// Number of Fermionic modes.
    pub fn num_modes(&self) -> usize {
        self.num_modes
    }

    /// The terms in insertion order.
    pub fn terms(&self) -> &[FermionTerm] {
        &self.terms
    }

    /// Adds one term.
    ///
    /// # Panics
    ///
    /// Panics if the term mentions a mode `>= num_modes`.
    pub fn add_term(&mut self, term: FermionTerm) {
        if let Some(max) = term.max_mode() {
            assert!(
                max < self.num_modes,
                "term mentions mode {max} but Hamiltonian has {} modes",
                self.num_modes
            );
        }
        if term.coeff != Complex64::ZERO {
            self.terms.push(term);
        }
    }

    /// Adds `term + term†` (or just `term` when it is self-adjoint), keeping
    /// the Hamiltonian Hermitian by construction.
    pub fn add_hermitian(&mut self, term: FermionTerm) {
        if term.is_self_adjoint() {
            self.add_term(term);
        } else {
            let adj = term.adjoint();
            self.add_term(term);
            self.add_term(adj);
        }
    }

    /// Adds the number operator `c·a†_m a_m`.
    pub fn add_number_operator(&mut self, mode: usize, c: f64) {
        self.add_term(FermionTerm::new(
            Complex64::from_re(c),
            vec![FermionOp::creation(mode), FermionOp::annihilation(mode)],
        ));
    }

    /// Adds the Hermitian hopping pair `t·(a†_i a_j + a†_j a_i)`, `i ≠ j`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` (use
    /// [`add_number_operator`](Self::add_number_operator)).
    pub fn add_hopping(&mut self, i: usize, j: usize, t: f64) {
        assert_ne!(i, j, "hopping needs two distinct modes");
        self.add_term(FermionTerm::new(
            Complex64::from_re(t),
            vec![FermionOp::creation(i), FermionOp::annihilation(j)],
        ));
        self.add_term(FermionTerm::new(
            Complex64::from_re(t),
            vec![FermionOp::creation(j), FermionOp::annihilation(i)],
        ));
    }

    /// True when the operator is Hermitian.
    ///
    /// Checked exactly through the Majorana expansion (structural
    /// comparisons of operator products are too strict: `n↑·n↓` is Hermitian
    /// although its reversed product is a different expression).
    pub fn is_hermitian(&self) -> bool {
        crate::majorana::MajoranaSum::from_fermion(self).is_hermitian(1e-10)
    }

    /// Total number of individual operator factors across all terms
    /// (a size diagnostic: the paper's clause counts scale with this).
    pub fn num_operator_factors(&self) -> usize {
        self.terms.iter().map(|t| t.ops.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjoint_reverses_and_flips() {
        let t = FermionTerm::new(
            Complex64::new(0.0, 2.0),
            vec![FermionOp::creation(0), FermionOp::annihilation(3)],
        );
        let adj = t.adjoint();
        assert_eq!(adj.coeff, Complex64::new(0.0, -2.0));
        assert_eq!(
            adj.ops,
            vec![FermionOp::creation(3), FermionOp::annihilation(0)]
        );
        // Double adjoint is identity.
        assert_eq!(adj.adjoint(), t);
    }

    #[test]
    fn number_operator_is_self_adjoint() {
        let t = FermionTerm::new(
            Complex64::ONE,
            vec![FermionOp::creation(1), FermionOp::annihilation(1)],
        );
        assert!(t.is_self_adjoint());
    }

    #[test]
    fn add_hermitian_avoids_double_count() {
        let mut h = FermionHamiltonian::new(2);
        let num_op = FermionTerm::new(
            Complex64::ONE,
            vec![FermionOp::creation(0), FermionOp::annihilation(0)],
        );
        h.add_hermitian(num_op);
        assert_eq!(h.terms().len(), 1);
        let hop = FermionTerm::new(
            Complex64::ONE,
            vec![FermionOp::creation(0), FermionOp::annihilation(1)],
        );
        h.add_hermitian(hop);
        assert_eq!(h.terms().len(), 3);
        assert!(h.is_hermitian());
    }

    #[test]
    fn hermiticity_detects_imbalance() {
        let mut h = FermionHamiltonian::new(2);
        h.add_term(FermionTerm::new(
            Complex64::ONE,
            vec![FermionOp::creation(0), FermionOp::annihilation(1)],
        ));
        assert!(!h.is_hermitian());
        h.add_term(FermionTerm::new(
            Complex64::ONE,
            vec![FermionOp::creation(1), FermionOp::annihilation(0)],
        ));
        assert!(h.is_hermitian());
    }

    #[test]
    fn zero_terms_are_dropped() {
        let mut h = FermionHamiltonian::new(1);
        h.add_term(FermionTerm::constant(Complex64::ZERO));
        assert!(h.terms().is_empty());
    }

    #[test]
    #[should_panic(expected = "mentions mode")]
    fn out_of_range_mode_panics() {
        let mut h = FermionHamiltonian::new(2);
        h.add_number_operator(5, 1.0);
    }

    #[test]
    fn display_forms() {
        let t = FermionTerm::new(
            Complex64::from_re(0.5),
            vec![FermionOp::creation(0), FermionOp::annihilation(2)],
        );
        assert_eq!(t.to_string(), "(0.5+0i)·a†0·a2");
    }
}

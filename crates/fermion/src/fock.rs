//! Exact Fock-space matrices — encoding-independent references.
//!
//! The Fock basis `|x_{N-1} … x_0⟩` (occupation `x_j` of mode `j`, basis
//! index `Σ x_j 2^j`) fixes a concrete matrix representation of any
//! second-quantized operator. Matrix elements follow the standard ordering
//! convention `|x⟩ = (a†_0)^{x_0}(a†_1)^{x_1}…|vac⟩`, giving
//!
//! ```text
//! a_j|…x_j…⟩  = (−1)^{Σ_{k<j} x_k} · x_j     · |…0_j…⟩
//! a†_j|…x_j…⟩ = (−1)^{Σ_{k<j} x_k} · (1−x_j) · |…1_j…⟩
//! ```
//!
//! Every valid Fermion-to-qubit encoding must map a Hamiltonian to a qubit
//! operator *isospectral* to the matrix built here — the strongest
//! correctness oracle the test-suite has.

use crate::majorana::MajoranaSum;
use crate::ops::{FermionHamiltonian, FermionOp, FermionTerm};
use mathkit::{CMatrix, Complex64};

/// Applies one operator to basis state `x`, returning `(sign, new_state)`
/// or `None` when annihilated.
fn apply_op(op: FermionOp, x: u64) -> Option<(f64, u64)> {
    let j = op.mode();
    let occupied = x >> j & 1 == 1;
    if op.is_creation() == occupied {
        return None; // create on occupied / annihilate on empty
    }
    let below = x & ((1u64 << j) - 1);
    let sign = if below.count_ones().is_multiple_of(2) {
        1.0
    } else {
        -1.0
    };
    Some((sign, x ^ (1 << j)))
}

/// Applies a full term (rightmost operator first) to basis state `x`.
fn apply_term(term: &FermionTerm, x: u64) -> Option<(Complex64, u64)> {
    let mut amp = term.coeff;
    let mut state = x;
    for op in term.ops.iter().rev() {
        let (sign, next) = apply_op(*op, state)?;
        amp = amp * sign;
        state = next;
    }
    Some((amp, state))
}

/// Dense `2^N × 2^N` matrix of a second-quantized Hamiltonian.
///
/// Exponential in the mode count; intended for the ≤ 8-mode validation and
/// simulation benchmarks of the paper.
///
/// # Example
///
/// ```
/// use fermion::FermionHamiltonian;
/// use fermion::fock::hamiltonian_matrix;
///
/// let mut h = FermionHamiltonian::new(1);
/// h.add_number_operator(0, 2.0);
/// let m = hamiltonian_matrix(&h);
/// // diag(0, 2): the occupied state |1⟩ has energy 2.
/// assert!((m[(0, 0)].re - 0.0).abs() < 1e-12);
/// assert!((m[(1, 1)].re - 2.0).abs() < 1e-12);
/// ```
pub fn hamiltonian_matrix(h: &FermionHamiltonian) -> CMatrix {
    let dim = 1usize << h.num_modes();
    let mut m = CMatrix::zeros(dim, dim);
    for term in h.terms() {
        for x in 0..dim as u64 {
            if let Some((amp, y)) = apply_term(term, x) {
                m[(y as usize, x as usize)] += amp;
            }
        }
    }
    m
}

/// Dense matrix of a single Majorana operator `M_i` in the Fock basis
/// (`M_{2j} = a†_j + a_j`, `M_{2j+1} = i(a†_j − a_j)`).
pub fn majorana_matrix(num_modes: usize, index: usize) -> CMatrix {
    assert!(index < 2 * num_modes, "Majorana index out of range");
    let j = index / 2;
    let dim = 1usize << num_modes;
    let mut m = CMatrix::zeros(dim, dim);
    let odd = index % 2 == 1;
    for x in 0..dim as u64 {
        for op in [FermionOp::creation(j), FermionOp::annihilation(j)] {
            if let Some((sign, y)) = apply_op(op, x) {
                let factor = if odd {
                    // i(a† − a)
                    if op.is_creation() {
                        Complex64::new(0.0, sign)
                    } else {
                        Complex64::new(0.0, -sign)
                    }
                } else {
                    Complex64::from_re(sign)
                };
                m[(y as usize, x as usize)] += factor;
            }
        }
    }
    m
}

/// Dense matrix of a [`MajoranaSum`] in the Fock basis.
pub fn majorana_sum_matrix(sum: &MajoranaSum) -> CMatrix {
    let n = sum.num_modes();
    let dim = 1usize << n;
    let mut total = CMatrix::zeros(dim, dim);
    for (mono, coeff) in sum.iter() {
        let mut m = CMatrix::identity(dim);
        for &idx in mono.indices() {
            m = &m * &majorana_matrix(n, idx as usize);
        }
        total = &total + &m.scale(coeff);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::eigen::eigh;

    #[test]
    fn vacuum_annihilates() {
        assert!(apply_op(FermionOp::annihilation(0), 0).is_none());
        assert!(apply_op(FermionOp::creation(0), 1).is_none());
        let (s, y) = apply_op(FermionOp::creation(0), 0).unwrap();
        assert_eq!((s, y), (1.0, 1));
    }

    #[test]
    fn jordan_wigner_signs() {
        // a†₂ on |011⟩ (modes 0,1 occupied): sign = (+1)·(−1)² = +1? bits
        // below mode 2 are x₀=1, x₁=1 → even parity → +1.
        let (s, y) = apply_op(FermionOp::creation(2), 0b011).unwrap();
        assert_eq!((s, y), (1.0, 0b111));
        // a†₁ on |001⟩: one bit below → −1.
        let (s, y) = apply_op(FermionOp::creation(1), 0b001).unwrap();
        assert_eq!((s, y), (-1.0, 0b011));
    }

    #[test]
    fn canonical_anticommutation_as_matrices() {
        // {a_i, a†_j} = δ_ij, {a_i, a_j} = 0 for a 3-mode system.
        let n = 3;
        let dim = 1 << n;
        let op_matrix = |op: FermionOp| {
            let mut m = CMatrix::zeros(dim, dim);
            for x in 0..dim as u64 {
                if let Some((s, y)) = apply_op(op, x) {
                    m[(y as usize, x as usize)] += Complex64::from_re(s);
                }
            }
            m
        };
        for i in 0..n {
            for j in 0..n {
                let ai = op_matrix(FermionOp::annihilation(i));
                let adj = op_matrix(FermionOp::creation(j));
                let anti = &(&ai * &adj) + &(&adj * &ai);
                let expect = if i == j {
                    CMatrix::identity(dim)
                } else {
                    CMatrix::zeros(dim, dim)
                };
                assert!(anti.approx_eq(&expect, 1e-12), "{{a_{i}, a†_{j}}}");
                let aj = op_matrix(FermionOp::annihilation(j));
                let anti2 = &(&ai * &aj) + &(&aj * &ai);
                assert!(anti2.max_norm() < 1e-12, "{{a_{i}, a_{j}}}");
            }
        }
    }

    #[test]
    fn majorana_matrices_are_hermitian_and_anticommute() {
        let n = 2;
        let ms: Vec<CMatrix> = (0..2 * n).map(|i| majorana_matrix(n, i)).collect();
        for (i, mi) in ms.iter().enumerate() {
            assert!(mi.is_hermitian(1e-12), "M{i} Hermitian");
            for (j, mj) in ms.iter().enumerate() {
                let anti = &(mi * mj) + &(mj * mi);
                let expect = if i == j {
                    CMatrix::identity(1 << n).scale(Complex64::from_re(2.0))
                } else {
                    CMatrix::zeros(1 << n, 1 << n)
                };
                assert!(anti.approx_eq(&expect, 1e-12), "{{M{i}, M{j}}}");
            }
        }
    }

    #[test]
    fn majorana_sum_matrix_matches_fermion_matrix() {
        // Build a small interacting Hamiltonian both ways; matrices agree.
        let mut h = FermionHamiltonian::new(3);
        h.add_hopping(0, 1, -1.0);
        h.add_hopping(1, 2, -0.5);
        h.add_number_operator(2, 0.7);
        let direct = hamiltonian_matrix(&h);
        let via_majorana = majorana_sum_matrix(&MajoranaSum::from_fermion(&h));
        assert!(direct.approx_eq(&via_majorana, 1e-10));
    }

    #[test]
    fn hubbard_dimer_spectrum() {
        // Two-site Hubbard at half filling: modes (site,spin) with
        // interleaving (2·site + spin). Known spectrum features: ground
        // energy = (U − sqrt(U² + 16t²)) / 2 in the 2-electron sector.
        let (t, u) = (1.0, 4.0);
        let mut h = FermionHamiltonian::new(4);
        for spin in 0..2 {
            h.add_hopping(spin, 2 + spin, -t);
        }
        for site in 0..2 {
            h.add_term(FermionTerm::new(
                Complex64::from_re(u),
                vec![
                    FermionOp::creation(2 * site),
                    FermionOp::annihilation(2 * site),
                    FermionOp::creation(2 * site + 1),
                    FermionOp::annihilation(2 * site + 1),
                ],
            ));
        }
        let m = hamiltonian_matrix(&h);
        assert!(m.is_hermitian(1e-12));
        let eig = eigh(&m);
        // The half-filled singlet energy (U − sqrt(U²+16t²))/2 must appear
        // in the spectrum. (It is not the global Fock-space minimum: the
        // single-electron sector reaches −t.)
        let expect = (u - (u * u + 16.0 * t * t).sqrt()) / 2.0;
        let closest = eig
            .values
            .iter()
            .map(|v| (v - expect).abs())
            .fold(f64::INFINITY, f64::min);
        assert!(closest < 1e-9, "singlet energy {expect} not in spectrum");
        // Global minimum is the 1-electron bonding state at −t.
        assert!((eig.values[0] + t).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn majorana_index_bound() {
        let _ = majorana_matrix(2, 4);
    }

    #[test]
    fn monomial_reduction_signs_match_matrices() {
        // The normal-ordering sign of `MajoranaMonomial::reduce` must agree
        // with explicit matrix products for every sequence of ≤ 4 factors
        // over 2 modes (4 Majorana operators) — an exhaustive check of the
        // anticommutation bookkeeping.
        use crate::majorana::MajoranaMonomial;
        let n = 2;
        let dim = 1 << n;
        let ms: Vec<CMatrix> = (0..2 * n).map(|i| majorana_matrix(n, i)).collect();
        let mut sequences: Vec<Vec<u32>> = vec![vec![]];
        for _ in 0..3 {
            let mut next = Vec::new();
            for seq in &sequences {
                for i in 0..2 * n as u32 {
                    let mut s = seq.clone();
                    s.push(i);
                    next.push(s);
                }
            }
            sequences.extend(next);
        }
        for seq in sequences {
            let mut product = CMatrix::identity(dim);
            for &i in &seq {
                product = &product * &ms[i as usize];
            }
            let (sign, mono) = MajoranaMonomial::reduce(&seq);
            let mut reduced = CMatrix::identity(dim);
            for &i in mono.indices() {
                reduced = &reduced * &ms[i as usize];
            }
            let expected = reduced.scale(Complex64::from_re(sign as f64));
            assert!(
                product.approx_eq(&expected, 1e-10),
                "sequence {seq:?} → sign {sign}, monomial {mono}"
            );
        }
    }
}

//! The Majorana-operator picture.
//!
//! Every Fermionic mode `j` splits into two Hermitian Majorana operators
//! (paper Section 2.2.2, 0-based here):
//!
//! ```text
//! M_{2j}   = a†_j + a_j          a_j  = (M_{2j} + i·M_{2j+1}) / 2
//! M_{2j+1} = i(a†_j − a_j)       a†_j = (M_{2j} − i·M_{2j+1}) / 2
//! ```
//!
//! with `{M_i, M_j} = 2δ_ij`. A product of creation/annihilation operators
//! expands into `2^k` Majorana *monomials*; each monomial normal-orders to a
//! sign times a product over a *set* of distinct Majorana indices (`M² = I`
//! cancels repeats, transpositions contribute −1).
//!
//! The set structure of those monomials — independent of coefficients — is
//! exactly what the Hamiltonian-dependent Pauli-weight objective consumes
//! (paper Eq. 14): under an encoding that assigns a Pauli string to each
//! Majorana operator, the weight of a monomial is the weight of the XOR
//! (phase-free product) of its strings.

use crate::ops::{FermionHamiltonian, FermionTerm};
use mathkit::Complex64;
use std::collections::BTreeMap;
use std::fmt;

/// A normal-ordered product of distinct Majorana operators, stored as a
/// sorted index set. The empty monomial is the identity.
///
/// # Example
///
/// ```
/// use fermion::MajoranaMonomial;
///
/// let (sign, m) = MajoranaMonomial::reduce(&[3, 1, 1, 0]);
/// // M₃M₁M₁M₀ = M₃M₀ (M₁² = I), and sorting M₃M₀ → M₀M₃ costs one swap.
/// assert_eq!(m.indices(), &[0, 3]);
/// assert_eq!(sign, -1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MajoranaMonomial {
    indices: Vec<u32>,
}

impl MajoranaMonomial {
    /// The identity monomial.
    pub fn identity() -> MajoranaMonomial {
        MajoranaMonomial { indices: vec![] }
    }

    /// Builds from a set of distinct, sorted indices.
    ///
    /// # Panics
    ///
    /// Panics if indices are not strictly increasing.
    pub fn from_sorted(indices: Vec<u32>) -> MajoranaMonomial {
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        MajoranaMonomial { indices }
    }

    /// Normal-orders an arbitrary index sequence: returns the sign from
    /// anticommutation swaps and the reduced monomial after `M² = I`
    /// cancellation.
    pub fn reduce(seq: &[u32]) -> (i32, MajoranaMonomial) {
        let mut v = seq.to_vec();
        let mut sign = 1i32;
        // Insertion sort, counting swaps of *distinct* neighbours. Equal
        // neighbours never swap, so they end up adjacent and cancel below.
        for i in 1..v.len() {
            let mut j = i;
            while j > 0 && v[j - 1] > v[j] {
                v.swap(j - 1, j);
                sign = -sign;
                j -= 1;
            }
        }
        let mut out = Vec::with_capacity(v.len());
        let mut i = 0;
        while i < v.len() {
            if i + 1 < v.len() && v[i] == v[i + 1] {
                i += 2; // M·M = I
            } else {
                out.push(v[i]);
                i += 1;
            }
        }
        (sign, MajoranaMonomial { indices: out })
    }

    /// The sorted distinct Majorana indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Number of Majorana factors.
    pub fn degree(&self) -> usize {
        self.indices.len()
    }

    /// True for the identity monomial.
    pub fn is_identity(&self) -> bool {
        self.indices.is_empty()
    }

    /// Product of two monomials: symmetric-difference of index sets with
    /// the anticommutation sign.
    pub fn mul(&self, other: &MajoranaMonomial) -> (i32, MajoranaMonomial) {
        let mut seq: Vec<u32> = self.indices.clone();
        seq.extend_from_slice(&other.indices);
        MajoranaMonomial::reduce(&seq)
    }

    /// Sign `(-1)^{k(k-1)/2}` picked up by reversing the product — the
    /// monomial is Hermitian iff this is `+1` (degrees 0, 1 mod 4).
    pub fn adjoint_sign(&self) -> i32 {
        let k = self.indices.len();
        if (k * k.saturating_sub(1) / 2).is_multiple_of(2) {
            1
        } else {
            -1
        }
    }
}

impl fmt::Display for MajoranaMonomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.indices.is_empty() {
            return write!(f, "1");
        }
        for (i, idx) in self.indices.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "M{idx}")?;
        }
        Ok(())
    }
}

/// A Hamiltonian expressed over Majorana monomials: `Σ c_m · Π M_i`.
///
/// # Example
///
/// ```
/// use fermion::{FermionHamiltonian, MajoranaSum};
///
/// let mut h = FermionHamiltonian::new(2);
/// h.add_hopping(0, 1, -1.0);
/// let m = MajoranaSum::from_fermion(&h);
/// assert!(m.is_hermitian(1e-12));
/// // Hopping between two modes yields two quadratic monomials.
/// assert!(m.monomials().all(|mono| mono.degree() == 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MajoranaSum {
    num_modes: usize,
    terms: BTreeMap<MajoranaMonomial, Complex64>,
}

/// Coefficients below this magnitude are dropped.
const PRUNE_TOL: f64 = 1e-12;

impl MajoranaSum {
    /// An empty sum over `num_modes` Fermionic modes (`2·num_modes`
    /// Majorana operators).
    ///
    /// # Panics
    ///
    /// Panics if `num_modes == 0`.
    pub fn new(num_modes: usize) -> MajoranaSum {
        assert!(num_modes > 0, "need at least one mode");
        MajoranaSum {
            num_modes,
            terms: BTreeMap::new(),
        }
    }

    /// Number of Fermionic modes.
    pub fn num_modes(&self) -> usize {
        self.num_modes
    }

    /// Number of Majorana operators (`2 × modes`).
    pub fn num_majoranas(&self) -> usize {
        2 * self.num_modes
    }

    /// Number of distinct monomials with non-negligible coefficient.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no monomial is present.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `coeff · monomial`.
    ///
    /// # Panics
    ///
    /// Panics if the monomial mentions an index `≥ 2·num_modes`.
    pub fn add_monomial(&mut self, monomial: MajoranaMonomial, coeff: Complex64) {
        if let Some(&max) = monomial.indices().last() {
            assert!(
                (max as usize) < self.num_majoranas(),
                "Majorana index {max} out of range"
            );
        }
        let e = self.terms.entry(monomial).or_insert(Complex64::ZERO);
        *e += coeff;
        if e.is_zero(PRUNE_TOL) {
            self.terms.retain(|_, c| !c.is_zero(PRUNE_TOL));
        }
    }

    /// Expands a second-quantized Hamiltonian into Majorana monomials with
    /// exact signs.
    pub fn from_fermion(h: &FermionHamiltonian) -> MajoranaSum {
        let mut sum = MajoranaSum::new(h.num_modes());
        for term in h.terms() {
            sum.accumulate_term(term);
        }
        sum
    }

    fn accumulate_term(&mut self, term: &FermionTerm) {
        // Partial expansions: (coefficient, Majorana index sequence).
        let mut partial: Vec<(Complex64, Vec<u32>)> = vec![(term.coeff, Vec::new())];
        for op in &term.ops {
            let j = op.mode() as u32;
            // a_j = (M_{2j} + i·M_{2j+1})/2 ; a†_j flips the sign of i.
            let i_factor = if op.is_creation() {
                Complex64::new(0.0, -0.5)
            } else {
                Complex64::new(0.0, 0.5)
            };
            let mut next = Vec::with_capacity(partial.len() * 2);
            for (c, seq) in partial {
                let mut even = seq.clone();
                even.push(2 * j);
                next.push((c * 0.5, even));
                let mut odd = seq;
                odd.push(2 * j + 1);
                next.push((c * i_factor, odd));
            }
            partial = next;
        }
        for (c, seq) in partial {
            let (sign, mono) = MajoranaMonomial::reduce(&seq);
            self.add_monomial(mono, c * sign as f64);
        }
    }

    /// Iterator over the monomials (the Hamiltonian "structure" used by the
    /// weight objective), in canonical order.
    pub fn monomials(&self) -> impl Iterator<Item = &MajoranaMonomial> + '_ {
        self.terms.keys()
    }

    /// Iterator over `(monomial, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&MajoranaMonomial, Complex64)> + '_ {
        self.terms.iter().map(|(m, &c)| (m, c))
    }

    /// The coefficient of a monomial (zero when absent).
    pub fn coefficient(&self, m: &MajoranaMonomial) -> Complex64 {
        self.terms.get(m).copied().unwrap_or(Complex64::ZERO)
    }

    /// The de-duplicated non-identity monomials — the input to the
    /// Hamiltonian-dependent weight objective (paper Section 3.7; identity
    /// contributes no gates, duplicates are one Pauli string).
    pub fn weight_structure(&self) -> Vec<&MajoranaMonomial> {
        self.terms.keys().filter(|m| !m.is_identity()).collect()
    }

    /// True when the operator is Hermitian: each monomial's coefficient
    /// matches its adjoint requirement (`c·(±1) = c*`).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.terms.iter().all(|(m, c)| {
            let expected = c.conj() * m.adjoint_sign() as f64;
            c.approx_eq(expected, tol)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::FermionOp;

    fn re(x: f64) -> Complex64 {
        Complex64::from_re(x)
    }

    #[test]
    fn reduce_handles_cancellation_and_sign() {
        let (s, m) = MajoranaMonomial::reduce(&[]);
        assert_eq!((s, m.degree()), (1, 0));
        let (s, m) = MajoranaMonomial::reduce(&[2, 2]);
        assert!(m.is_identity());
        assert_eq!(s, 1);
        // M₁M₀ = −M₀M₁.
        let (s, m) = MajoranaMonomial::reduce(&[1, 0]);
        assert_eq!(s, -1);
        assert_eq!(m.indices(), &[0, 1]);
        // M₂M₁M₂ = −M₂M₂M₁ = −M₁.
        let (s, m) = MajoranaMonomial::reduce(&[2, 1, 2]);
        assert_eq!(s, -1);
        assert_eq!(m.indices(), &[1]);
    }

    #[test]
    fn monomial_product_is_symmetric_difference() {
        let a = MajoranaMonomial::from_sorted(vec![0, 2]);
        let b = MajoranaMonomial::from_sorted(vec![2, 3]);
        let (sign, p) = a.mul(&b);
        assert_eq!(p.indices(), &[0, 3]);
        // M₀M₂M₂M₃ = M₀M₃, no swaps of distinct indices needed… check sign
        // by explicit reduction.
        assert_eq!(sign, 1);
    }

    #[test]
    fn adjoint_sign_mod_four() {
        assert_eq!(MajoranaMonomial::identity().adjoint_sign(), 1);
        assert_eq!(MajoranaMonomial::from_sorted(vec![1]).adjoint_sign(), 1);
        assert_eq!(MajoranaMonomial::from_sorted(vec![1, 2]).adjoint_sign(), -1);
        assert_eq!(
            MajoranaMonomial::from_sorted(vec![1, 2, 3]).adjoint_sign(),
            -1
        );
        assert_eq!(
            MajoranaMonomial::from_sorted(vec![1, 2, 3, 4]).adjoint_sign(),
            1
        );
    }

    #[test]
    fn number_operator_expansion() {
        // a†a = (M₀ − iM₁)(M₀ + iM₁)/4 = (I + i·M₀M₁)/2.
        // (Check against matrices: M₀ = X, M₁ = Y, M₀M₁ = iZ, so the
        // expansion is (I − Z)/2 = diag(0, 1) = n. ✓)
        let mut h = FermionHamiltonian::new(1);
        h.add_number_operator(0, 1.0);
        let m = MajoranaSum::from_fermion(&h);
        assert_eq!(m.len(), 2);
        assert!(m
            .coefficient(&MajoranaMonomial::identity())
            .approx_eq(re(0.5), 1e-12));
        assert!(m
            .coefficient(&MajoranaMonomial::from_sorted(vec![0, 1]))
            .approx_eq(Complex64::new(0.0, 0.5), 1e-12));
        assert!(m.is_hermitian(1e-12));
    }

    #[test]
    fn hopping_expansion_is_quadratic_and_hermitian() {
        // a†₀a₁ + a†₁a₀ = (−i/2)(M₀M₃ ... ) — two quadratic monomials.
        let mut h = FermionHamiltonian::new(2);
        h.add_hopping(0, 1, 1.0);
        let m = MajoranaSum::from_fermion(&h);
        assert!(m.is_hermitian(1e-12));
        let structure = m.weight_structure();
        assert_eq!(structure.len(), 2);
        for mono in structure {
            assert_eq!(mono.degree(), 2);
            // One Majorana from mode 0 (index < 2), one from mode 1.
            assert!(mono.indices()[0] < 2 && mono.indices()[1] >= 2);
        }
    }

    #[test]
    fn anticommutator_identity_via_monomials() {
        // {a†₀, a₀} = I: expand a†a + aa† and check only identity remains.
        let mut h = FermionHamiltonian::new(1);
        h.add_term(FermionTerm::new(
            Complex64::ONE,
            vec![FermionOp::creation(0), FermionOp::annihilation(0)],
        ));
        h.add_term(FermionTerm::new(
            Complex64::ONE,
            vec![FermionOp::annihilation(0), FermionOp::creation(0)],
        ));
        let m = MajoranaSum::from_fermion(&h);
        assert_eq!(m.len(), 1);
        assert!(m
            .coefficient(&MajoranaMonomial::identity())
            .approx_eq(re(1.0), 1e-12));
    }

    #[test]
    fn pauli_exclusion_squares_to_zero() {
        // (a†₀)² = 0.
        let mut h = FermionHamiltonian::new(1);
        h.add_term(FermionTerm::new(
            Complex64::ONE,
            vec![FermionOp::creation(0), FermionOp::creation(0)],
        ));
        let m = MajoranaSum::from_fermion(&h);
        assert!(m.is_empty(), "{m:?}");
    }

    #[test]
    fn two_body_term_degree() {
        // a†₀a†₁a₂a₃ expands into monomials of degree 4 only.
        let mut h = FermionHamiltonian::new(4);
        h.add_term(FermionTerm::new(
            re(1.0),
            vec![
                FermionOp::creation(0),
                FermionOp::creation(1),
                FermionOp::annihilation(2),
                FermionOp::annihilation(3),
            ],
        ));
        let m = MajoranaSum::from_fermion(&h);
        assert_eq!(m.len(), 16);
        assert!(m.monomials().all(|mono| mono.degree() == 4));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_monomial_rejected() {
        let _ = MajoranaMonomial::from_sorted(vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn monomial_index_range_checked() {
        let mut s = MajoranaSum::new(1);
        s.add_monomial(MajoranaMonomial::from_sorted(vec![5]), re(1.0));
    }
}

//! Second-quantized Fermionic systems.
//!
//! Everything the Fermihedral pipeline needs *before* choosing a
//! Fermion-to-qubit encoding lives here:
//!
//! * [`ops`] — creation/annihilation operators, terms, and Hamiltonians in
//!   second quantization (paper Section 2.2).
//! * [`majorana`] — the Majorana-operator picture: expansion of Fermionic
//!   terms into Majorana monomials with exact signs, and the de-duplicated
//!   monomial structure that drives the Hamiltonian-dependent Pauli-weight
//!   objective (Sections 3.7 and 4.2).
//! * [`fock`] — exact dense matrices in the Fock occupation basis. These are
//!   encoding-independent references: a correct Fermion-to-qubit encoding
//!   must produce an isospectral qubit Hamiltonian.
//! * [`models`] — the paper's three benchmark families (Figure 5):
//!   molecular electronic structure (embedded H₂/STO-3G integrals plus a
//!   synthetic generator), the 1-D/2-D Fermi-Hubbard model with periodic
//!   boundaries, and the four-body SYK model.
//!
//! # Example
//!
//! ```
//! use fermion::ops::FermionHamiltonian;
//! use fermion::majorana::MajoranaSum;
//! use mathkit::Complex64;
//!
//! // H = a†₀a₀ (a number operator on one mode)
//! let mut h = FermionHamiltonian::new(1);
//! h.add_number_operator(0, 1.0);
//! let m = MajoranaSum::from_fermion(&h);
//! // a†a = (1 + i·M₀M₁)/2: identity monomial + one quadratic monomial.
//! assert_eq!(m.len(), 2);
//! ```

pub mod fock;
pub mod majorana;
pub mod models;
pub mod ops;

pub use majorana::{MajoranaMonomial, MajoranaSum};
pub use ops::{FermionHamiltonian, FermionOp, FermionTerm};

//! Noisy state-vector quantum simulation and shot-based measurement.
//!
//! Replaces the paper's Qiskit-Aer simulations and IonQ hardware runs
//! (Figures 8–10):
//!
//! * [`state`] — a dense state-vector simulator with efficient Pauli-string
//!   expectation values and basis sampling.
//! * [`exact`] — exact diagonalization of qubit Hamiltonians; the
//!   experiments prepare energy eigenstates `E₀ … E₃` as initial states.
//! * [`noise`] — Monte-Carlo Pauli (depolarizing) channels after every
//!   gate plus readout bit-flips, with an IonQ Aria-1 preset built from the
//!   fidelities the paper reports (99.99 % 1q, 98.91 % 2q, 98.82 % readout).
//! * [`measure`] — the energy-estimation protocol: group qubit-wise
//!   commuting Hamiltonian terms, rotate each group to the Z basis, sample
//!   shots, and propagate estimator variance (the ±1σ bands of Figures
//!   8–10).
//!
//! # Example
//!
//! ```
//! use qsim::state::Statevector;
//! use pauli::PauliSum;
//! use mathkit::Complex64;
//!
//! // ⟨00| Z₀ |00⟩ = 1.
//! let psi = Statevector::zero(2);
//! let mut h = PauliSum::new(2);
//! h.add_term("IZ".parse().unwrap(), Complex64::ONE);
//! assert!((psi.expectation(&h).re - 1.0).abs() < 1e-12);
//! ```

pub mod exact;
pub mod measure;
pub mod noise;
pub mod state;

pub use exact::{eigenstate, spectrum};
pub use measure::{estimate_energy, EnergyEstimate};
pub use noise::NoiseModel;
pub use state::Statevector;

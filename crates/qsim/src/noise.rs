//! Noise models: Monte-Carlo Pauli channels and readout error.
//!
//! Depolarizing noise after each gate is simulated by trajectory sampling:
//! with the channel probability, a uniformly random non-identity Pauli is
//! injected on the gate's qubits. Averaged over trajectories this
//! reproduces the depolarizing channel exactly, and a single trajectory
//! stays a pure state — the same technique Qiskit-Aer's state-vector method
//! uses.

use crate::state::Statevector;
use circuit::{Circuit, Gate};
use rand::Rng;

/// Gate and readout error probabilities.
///
/// # Example
///
/// ```
/// use qsim::NoiseModel;
///
/// let aria = NoiseModel::ionq_aria1();
/// assert!(aria.p2 > aria.p1); // two-qubit gates dominate, as on hardware
/// let ideal = NoiseModel::noiseless();
/// assert_eq!(ideal.p1, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after each single-qubit gate.
    pub p1: f64,
    /// Depolarizing probability after each two-qubit gate.
    pub p2: f64,
    /// Probability of flipping each measured bit at readout.
    pub readout_flip: f64,
    /// Apply tensored readout-error mitigation when estimating
    /// observables: each Pauli term's estimator is divided by
    /// `(1 − 2·readout_flip)^{weight}`, the exact inverse of the symmetric
    /// bit-flip channel's damping. IonQ applies debiasing/mitigation by
    /// default on Aria-class devices, so the Figure 10 preset enables it.
    pub mitigate_readout: bool,
}

impl NoiseModel {
    /// No noise at all.
    pub fn noiseless() -> NoiseModel {
        NoiseModel {
            p1: 0.0,
            p2: 0.0,
            readout_flip: 0.0,
            mitigate_readout: false,
        }
    }

    /// Depolarizing noise with the given one-/two-qubit error rates and
    /// perfect readout — the sweep variable of Figures 8–9 (the paper fixes
    /// 1q fidelity at 99.99 % and sweeps the 2q error).
    pub fn depolarizing(p1: f64, p2: f64) -> NoiseModel {
        assert!((0.0..=1.0).contains(&p1) && (0.0..=1.0).contains(&p2));
        NoiseModel {
            p1,
            p2,
            readout_flip: 0.0,
            mitigate_readout: false,
        }
    }

    /// The IonQ Aria-1 parameters the paper reports (Section 5.1):
    /// 99.99 % single-qubit, 98.91 % two-qubit, 98.82 % readout fidelity.
    pub fn ionq_aria1() -> NoiseModel {
        NoiseModel {
            p1: 1.0 - 0.9999,
            p2: 1.0 - 0.9891,
            readout_flip: 1.0 - 0.9882,
            mitigate_readout: true,
        }
    }

    /// Sets the readout flip probability.
    pub fn with_readout_flip(mut self, p: f64) -> NoiseModel {
        assert!((0.0..=1.0).contains(&p));
        self.readout_flip = p;
        self
    }

    /// Enables/disables tensored readout mitigation.
    pub fn with_readout_mitigation(mut self, on: bool) -> NoiseModel {
        self.mitigate_readout = on;
        self
    }

    /// True when every channel is exactly zero.
    pub fn is_noiseless(&self) -> bool {
        self.p1 == 0.0 && self.p2 == 0.0 && self.readout_flip == 0.0
    }
}

/// Injects a uniformly random non-identity single-qubit Pauli.
fn inject_1q(state: &mut Statevector, q: usize, rng: &mut impl Rng) {
    match rng.gen_range(0..3) {
        0 => state.apply(&Gate::X(q)),
        1 => state.apply(&Gate::Y(q)),
        _ => state.apply(&Gate::Z(q)),
    }
}

/// Injects a uniformly random non-II two-qubit Pauli pair.
fn inject_2q(state: &mut Statevector, a: usize, b: usize, rng: &mut impl Rng) {
    // 15 of the 16 pairs; 0 = II excluded.
    let k = rng.gen_range(1usize..16);
    let apply = |state: &mut Statevector, q: usize, code: usize| match code {
        1 => state.apply(&Gate::X(q)),
        2 => state.apply(&Gate::Y(q)),
        3 => state.apply(&Gate::Z(q)),
        _ => {}
    };
    apply(state, a, k / 4);
    apply(state, b, k % 4);
}

/// Runs one noisy trajectory of `circuit` from `initial`.
///
/// Each gate is applied exactly, then a random Pauli error is injected with
/// the channel probability. The result is a pure state; averaging
/// observables over trajectories converges to the noisy-channel values.
pub fn run_noisy(
    circuit: &Circuit,
    initial: &Statevector,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) -> Statevector {
    let mut state = initial.clone();
    for g in circuit.iter() {
        state.apply(g);
        match *g {
            Gate::Cnot { control, target } => {
                if noise.p2 > 0.0 && rng.gen::<f64>() < noise.p2 {
                    inject_2q(&mut state, control, target, rng);
                }
            }
            ref g1 => {
                if noise.p1 > 0.0 && rng.gen::<f64>() < noise.p1 {
                    inject_1q(&mut state, g1.qubits()[0], rng);
                }
            }
        }
    }
    state
}

/// Samples a measured bitstring with readout error applied.
pub fn sample_with_readout(state: &Statevector, noise: &NoiseModel, rng: &mut impl Rng) -> usize {
    let mut outcome = state.sample(rng);
    if noise.readout_flip > 0.0 {
        for q in 0..state.num_qubits() {
            if rng.gen::<f64>() < noise.readout_flip {
                outcome ^= 1 << q;
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.push(Gate::H(0));
        for q in 1..n {
            c.push(Gate::Cnot {
                control: q - 1,
                target: q,
            });
        }
        c
    }

    #[test]
    fn noiseless_trajectory_is_pure_circuit() {
        let c = ghz(3);
        let mut rng = StdRng::seed_from_u64(5);
        let traj = run_noisy(
            &c,
            &Statevector::zero(3),
            &NoiseModel::noiseless(),
            &mut rng,
        );
        let mut direct = Statevector::zero(3);
        direct.apply_circuit(&c);
        assert!((traj.fidelity(&direct) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trajectories_stay_normalized() {
        let c = ghz(4);
        let noise = NoiseModel::depolarizing(0.05, 0.2);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let traj = run_noisy(&c, &Statevector::zero(4), &noise, &mut rng);
            assert!((traj.norm_sqr() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn strong_noise_degrades_fidelity() {
        let c = ghz(3);
        let mut direct = Statevector::zero(3);
        direct.apply_circuit(&c);
        let noise = NoiseModel::depolarizing(0.3, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut avg_fid = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let traj = run_noisy(&c, &Statevector::zero(3), &noise, &mut rng);
            avg_fid += traj.fidelity(&direct);
        }
        avg_fid /= trials as f64;
        assert!(avg_fid < 0.9, "average fidelity {avg_fid} should drop");
        assert!(avg_fid > 0.05, "some trajectories survive");
    }

    #[test]
    fn readout_flips_bits() {
        let psi = Statevector::zero(4);
        let all_flip = NoiseModel::noiseless().with_readout_flip(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(sample_with_readout(&psi, &all_flip, &mut rng), 0b1111);
        let none = NoiseModel::noiseless();
        assert_eq!(sample_with_readout(&psi, &none, &mut rng), 0);
    }

    #[test]
    fn aria_preset_values() {
        let m = NoiseModel::ionq_aria1();
        assert!((m.p1 - 1e-4).abs() < 1e-12);
        assert!((m.p2 - 0.0109).abs() < 1e-12);
        assert!((m.readout_flip - 0.0118).abs() < 1e-12);
        assert!(!m.is_noiseless());
    }

    #[test]
    #[should_panic]
    fn invalid_probability_rejected() {
        let _ = NoiseModel::depolarizing(1.5, 0.0);
    }
}

//! Exact diagonalization of qubit Hamiltonians.
//!
//! The noisy-simulation experiments (Figures 8–10) start from energy
//! eigenstates `E₀ … E₃` of the *mapped* Hamiltonian — stationary states
//! whose measured energy should stay put under noiseless evolution, so any
//! drift is attributable to gate noise.

use crate::state::Statevector;
use mathkit::eigen::{eigh, Eigh};
use pauli::PauliSum;

/// Full spectrum of a Hamiltonian (eigenvalues ascending).
///
/// # Panics
///
/// Panics if `h` is not Hermitian.
///
/// # Example
///
/// ```
/// use pauli::PauliSum;
/// use mathkit::Complex64;
///
/// let mut h = PauliSum::new(1);
/// h.add_term("X".parse().unwrap(), Complex64::ONE);
/// let eig = qsim::spectrum(&h);
/// assert!((eig.values[0] + 1.0).abs() < 1e-10);
/// assert!((eig.values[1] - 1.0).abs() < 1e-10);
/// ```
pub fn spectrum(h: &PauliSum) -> Eigh {
    eigh(&h.to_matrix())
}

/// The `k`-th energy eigenstate (0 = ground state) as a state vector.
///
/// # Panics
///
/// Panics if `h` is not Hermitian or `k` exceeds the dimension.
pub fn eigenstate(h: &PauliSum, k: usize) -> Statevector {
    let eig = spectrum(h);
    assert!(k < eig.values.len(), "eigenstate index out of range");
    Statevector::from_amplitudes(eig.vector(k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mathkit::Complex64;

    fn tfim() -> PauliSum {
        // A 2-qubit transverse-field Ising model: ZZ + 0.5(XI + IX).
        let mut h = PauliSum::new(2);
        h.add_term("ZZ".parse().unwrap(), Complex64::ONE);
        h.add_term("XI".parse().unwrap(), Complex64::from_re(0.5));
        h.add_term("IX".parse().unwrap(), Complex64::from_re(0.5));
        h
    }

    #[test]
    fn eigenstate_expectation_equals_eigenvalue() {
        let h = tfim();
        let eig = spectrum(&h);
        for k in 0..4 {
            let psi = eigenstate(&h, k);
            let e = psi.expectation(&h);
            assert!(
                (e.re - eig.values[k]).abs() < 1e-9,
                "k={k}: {} vs {}",
                e.re,
                eig.values[k]
            );
            assert!(e.im.abs() < 1e-10);
        }
    }

    #[test]
    fn ground_state_minimizes_energy() {
        let h = tfim();
        let ground = eigenstate(&h, 0);
        let e0 = ground.expectation(&h).re;
        // Any basis state has at least the ground energy.
        for idx in 0..4 {
            let e = Statevector::basis(2, idx).expectation(&h).re;
            assert!(e >= e0 - 1e-10);
        }
    }

    #[test]
    fn eigenstates_are_stationary_under_exact_evolution() {
        let h = tfim();
        let psi = eigenstate(&h, 1);
        // exp(−iHt)|E₁⟩ = e^{−iE₁t}|E₁⟩: fidelity 1 with the original.
        let u = circuit::evolution::exact_evolution(&h, 0.9);
        let evolved = Statevector::from_amplitudes(u.mul_vec(psi.amplitudes()));
        assert!((psi.fidelity(&evolved) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn eigenstate_index_checked() {
        let _ = eigenstate(&tfim(), 4);
    }
}

//! Shot-based energy estimation.
//!
//! Hardware (and the paper's Aer/IonQ runs) cannot read ⟨H⟩ directly: each
//! shot measures every qubit once in a single basis. The standard protocol,
//! reproduced here:
//!
//! 1. partition the Hamiltonian's Pauli terms into **qubit-wise commuting**
//!    groups — terms that agree (or are identity) site-by-site share one
//!    measurement basis;
//! 2. per group, rotate `X`/`Y` sites into the `Z` basis and sample
//!    bitstrings;
//! 3. each term's estimator is the parity `(−1)^{|outcome ∧ support|}`; the
//!    group's energy sample is the coefficient-weighted sum;
//! 4. the total energy is the identity offset plus the group means, with
//!    standard errors propagated across groups (the ±1σ bands of
//!    Figures 8–10).

use crate::noise::{run_noisy, sample_with_readout, NoiseModel};
use crate::state::Statevector;
use circuit::{Circuit, Gate};
use mathkit::stats;
use pauli::{Pauli, PauliString, PauliSum};
use rand::Rng;
use std::f64::consts::FRAC_PI_2;

/// A set of qubit-wise commuting terms measured in one shared basis.
#[derive(Debug, Clone)]
pub struct MeasurementGroup {
    /// Site-wise merge of the member terms' operators.
    basis: PauliString,
    /// Member terms with their (real) coefficients.
    terms: Vec<(PauliString, f64)>,
}

impl MeasurementGroup {
    /// The shared measurement basis.
    pub fn basis(&self) -> &PauliString {
        &self.basis
    }

    /// The member terms.
    pub fn terms(&self) -> &[(PauliString, f64)] {
        &self.terms
    }

    /// The circuit rotating the basis into all-`Z` measurements.
    pub fn rotation_circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.basis.num_qubits());
        for (q, op) in self.basis.support() {
            match op {
                Pauli::X => c.push(Gate::H(q)),
                Pauli::Y => c.push(Gate::Rx(q, FRAC_PI_2)),
                _ => {}
            }
        }
        c
    }

    /// The group's energy contribution for one measured bitstring.
    pub fn energy_sample(&self, outcome: usize) -> f64 {
        self.energy_sample_mitigated(outcome, 0.0)
    }

    /// Like [`energy_sample`](Self::energy_sample) but applies tensored
    /// readout mitigation: a symmetric bit-flip channel with rate `r` damps
    /// a weight-`w` parity estimator by `(1 − 2r)^w`, so dividing by that
    /// factor restores an unbiased estimator (at the price of variance).
    pub fn energy_sample_mitigated(&self, outcome: usize, readout_flip: f64) -> f64 {
        self.terms
            .iter()
            .map(|(p, w)| {
                let support = (p.x_mask() | p.z_mask()) as usize;
                let parity = (outcome & support).count_ones() % 2;
                let sign = if parity == 0 { *w } else { -*w };
                if readout_flip > 0.0 {
                    let damping = (1.0 - 2.0 * readout_flip).powi(p.weight() as i32);
                    sign / damping
                } else {
                    sign
                }
            })
            .sum()
    }
}

/// Greedy qubit-wise-commuting partition of a Hamiltonian. Returns the
/// groups and the identity-term offset.
///
/// # Panics
///
/// Panics if a coefficient has a non-negligible imaginary part.
///
/// # Example
///
/// ```
/// use qsim::measure::group_qubitwise;
/// use pauli::PauliSum;
/// use mathkit::Complex64;
///
/// let mut h = PauliSum::new(2);
/// h.add_term("ZI".parse().unwrap(), Complex64::ONE);
/// h.add_term("ZZ".parse().unwrap(), Complex64::ONE);  // qubit-wise commutes with ZI
/// h.add_term("XX".parse().unwrap(), Complex64::ONE);  // needs its own basis
/// let (groups, offset) = group_qubitwise(&h);
/// assert_eq!(groups.len(), 2);
/// assert_eq!(offset, 0.0);
/// ```
pub fn group_qubitwise(h: &PauliSum) -> (Vec<MeasurementGroup>, f64) {
    let mut groups: Vec<MeasurementGroup> = Vec::new();
    let mut offset = 0.0;
    for (p, w) in h.iter() {
        assert!(w.im.abs() < 1e-9, "non-Hermitian coefficient {w} on {p}");
        if p.is_identity() {
            offset += w.re;
            continue;
        }
        let slot = groups.iter_mut().find(|g| g.basis.qubitwise_commutes(p));
        match slot {
            Some(g) => {
                // Merge the term into the basis: non-I sites agree already.
                for (q, op) in p.support() {
                    g.basis.set(q, op);
                }
                g.terms.push((p.clone(), w.re));
            }
            None => groups.push(MeasurementGroup {
                basis: p.clone(),
                terms: vec![(p.clone(), w.re)],
            }),
        }
    }
    (groups, offset)
}

/// An estimated energy with its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Mean estimated energy.
    pub energy: f64,
    /// Standard error propagated across measurement groups.
    pub std_dev: f64,
    /// Total shots spent.
    pub shots: usize,
}

/// Runs the full shot-based protocol: prepare `initial`, run `evolution`
/// under `noise` (fresh trajectory per shot), rotate to each group's basis,
/// sample with readout error, and aggregate.
///
/// Shots are split evenly across groups (each gets at least one).
///
/// # Panics
///
/// Panics if `shots == 0` or register widths disagree.
pub fn estimate_energy(
    initial: &Statevector,
    evolution: &Circuit,
    h: &PauliSum,
    shots: usize,
    noise: &NoiseModel,
    rng: &mut impl Rng,
) -> EnergyEstimate {
    assert!(shots > 0, "need at least one shot");
    assert_eq!(initial.num_qubits(), h.num_qubits(), "width mismatch");
    let (groups, offset) = group_qubitwise(h);
    if groups.is_empty() {
        return EnergyEstimate {
            energy: offset,
            std_dev: 0.0,
            shots: 0,
        };
    }
    let per_group = (shots / groups.len()).max(1);
    let mut energy = offset;
    let mut variance = 0.0;
    let mut used = 0;
    for group in &groups {
        let mut circuit = evolution.clone();
        circuit.append(&group.rotation_circuit());
        let mitigation = if noise.mitigate_readout {
            noise.readout_flip
        } else {
            0.0
        };
        let mut samples = Vec::with_capacity(per_group);
        for _ in 0..per_group {
            let state = run_noisy(&circuit, initial, noise, rng);
            let outcome = sample_with_readout(&state, noise, rng);
            samples.push(group.energy_sample_mitigated(outcome, mitigation));
        }
        used += per_group;
        energy += stats::mean(&samples);
        variance += stats::variance(&samples) / per_group as f64;
    }
    EnergyEstimate {
        energy,
        std_dev: variance.sqrt(),
        shots: used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::eigenstate;
    use circuit::evolution::trotter_circuit;
    use mathkit::Complex64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tfim() -> PauliSum {
        let mut h = PauliSum::new(2);
        h.add_term("ZZ".parse().unwrap(), Complex64::ONE);
        h.add_term("XI".parse().unwrap(), Complex64::from_re(0.5));
        h.add_term("IX".parse().unwrap(), Complex64::from_re(0.5));
        h
    }

    #[test]
    fn groups_cover_all_terms_and_commute() {
        let h = tfim();
        let (groups, offset) = group_qubitwise(&h);
        assert_eq!(offset, 0.0);
        let total_terms: usize = groups.iter().map(|g| g.terms.len()).sum();
        assert_eq!(total_terms, 3);
        for g in &groups {
            for (p, _) in g.terms() {
                assert!(g.basis().qubitwise_commutes(p));
            }
        }
        // XI and IX share a basis; ZZ does not.
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn identity_only_hamiltonian() {
        let h = PauliSum::identity(2).scale(Complex64::from_re(-3.25));
        let psi = Statevector::zero(2);
        let mut rng = StdRng::seed_from_u64(0);
        let est = estimate_energy(
            &psi,
            &Circuit::new(2),
            &h,
            10,
            &NoiseModel::noiseless(),
            &mut rng,
        );
        assert_eq!(est.energy, -3.25);
        assert_eq!(est.std_dev, 0.0);
    }

    #[test]
    fn noiseless_estimate_matches_expectation() {
        let h = tfim();
        let psi = eigenstate(&h, 0);
        let exact = psi.expectation(&h).re;
        let mut rng = StdRng::seed_from_u64(11);
        let est = estimate_energy(
            &psi,
            &Circuit::new(2),
            &h,
            6000,
            &NoiseModel::noiseless(),
            &mut rng,
        );
        let tol = 4.0 * est.std_dev + 0.02;
        assert!(
            (est.energy - exact).abs() < tol,
            "estimate {} vs exact {exact} (σ = {})",
            est.energy,
            est.std_dev
        );
    }

    #[test]
    fn eigenstate_energy_survives_trotter_evolution() {
        // Evolving an eigenstate (noiselessly) conserves its energy up to
        // Trotter error.
        let h = tfim();
        let psi = eigenstate(&h, 0);
        let exact = psi.expectation(&h).re;
        let circuit = trotter_circuit(&h, 1.0, 8);
        let mut rng = StdRng::seed_from_u64(21);
        let est = estimate_energy(&psi, &circuit, &h, 6000, &NoiseModel::noiseless(), &mut rng);
        assert!(
            (est.energy - exact).abs() < 0.1,
            "estimate {} vs exact {exact}",
            est.energy
        );
    }

    #[test]
    fn noise_drifts_energy_upward_from_ground() {
        // From the ground state, depolarizing noise can only raise energy.
        let h = tfim();
        let psi = eigenstate(&h, 0);
        let exact = psi.expectation(&h).re;
        let circuit = trotter_circuit(&h, 1.0, 4);
        let mut rng = StdRng::seed_from_u64(33);
        let noisy = estimate_energy(
            &psi,
            &circuit,
            &h,
            4000,
            &NoiseModel::depolarizing(0.01, 0.1),
            &mut rng,
        );
        assert!(
            noisy.energy > exact + 0.05,
            "noisy energy {} should drift above ground {exact}",
            noisy.energy
        );
    }

    #[test]
    fn readout_error_biases_estimates() {
        // Measuring Z on |0⟩ with heavy readout error pulls ⟨Z⟩ toward 0.
        let mut h = PauliSum::new(1);
        h.add_term("Z".parse().unwrap(), Complex64::ONE);
        let psi = Statevector::zero(1);
        let mut rng = StdRng::seed_from_u64(7);
        let noisy = estimate_energy(
            &psi,
            &Circuit::new(1),
            &h,
            4000,
            &NoiseModel::noiseless().with_readout_flip(0.25),
            &mut rng,
        );
        // ⟨Z⟩ = 1 ideally; flips scale it by (1−2·0.25) = 0.5.
        assert!((noisy.energy - 0.5).abs() < 0.08, "{}", noisy.energy);
    }

    #[test]
    fn readout_mitigation_restores_unbiased_estimates() {
        // Same setup, but with tensored mitigation: the estimate returns to
        // ⟨Z⟩ = 1 (with inflated variance).
        let mut h = PauliSum::new(1);
        h.add_term("Z".parse().unwrap(), Complex64::ONE);
        let psi = Statevector::zero(1);
        let mut rng = StdRng::seed_from_u64(8);
        let mitigated = estimate_energy(
            &psi,
            &Circuit::new(1),
            &h,
            6000,
            &NoiseModel::noiseless()
                .with_readout_flip(0.25)
                .with_readout_mitigation(true),
            &mut rng,
        );
        assert!(
            (mitigated.energy - 1.0).abs() < 0.1,
            "mitigated {} should be ~1",
            mitigated.energy
        );
        // Variance inflation: mitigated σ exceeds the unmitigated σ.
        let plain = estimate_energy(
            &psi,
            &Circuit::new(1),
            &h,
            6000,
            &NoiseModel::noiseless().with_readout_flip(0.25),
            &mut rng,
        );
        assert!(mitigated.std_dev > plain.std_dev);
    }

    #[test]
    fn mitigation_weights_by_term_support() {
        // A weight-2 term damps as (1−2r)², a weight-1 term as (1−2r); the
        // mitigated sampler must undo each accordingly.
        let mut h = PauliSum::new(2);
        h.add_term("ZZ".parse().unwrap(), Complex64::ONE);
        h.add_term("IZ".parse().unwrap(), Complex64::ONE);
        let psi = Statevector::zero(2); // ⟨ZZ⟩ = ⟨IZ⟩ = 1
        let mut rng = StdRng::seed_from_u64(9);
        let est = estimate_energy(
            &psi,
            &Circuit::new(2),
            &h,
            8000,
            &NoiseModel::noiseless()
                .with_readout_flip(0.1)
                .with_readout_mitigation(true),
            &mut rng,
        );
        assert!((est.energy - 2.0).abs() < 0.12, "{}", est.energy);
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn zero_shots_rejected() {
        let h = tfim();
        let psi = Statevector::zero(2);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = estimate_energy(
            &psi,
            &Circuit::new(2),
            &h,
            0,
            &NoiseModel::noiseless(),
            &mut rng,
        );
    }
}

//! Dense state vectors.

use circuit::unitary::apply_gate;
use circuit::{Circuit, Gate};
use mathkit::Complex64;
use pauli::{PauliString, PauliSum};
use rand::Rng;

/// A pure state of `n` qubits; qubit 0 is the least-significant bit of the
/// basis index.
///
/// # Example
///
/// ```
/// use qsim::Statevector;
/// use circuit::{Circuit, Gate};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H(0));
/// bell.push(Gate::Cnot { control: 0, target: 1 });
/// let mut psi = Statevector::zero(2);
/// psi.apply_circuit(&bell);
/// assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Statevector {
    num_qubits: usize,
    amps: Vec<Complex64>,
}

impl Statevector {
    /// The computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is 0 or large enough to overflow memory
    /// (> 30).
    pub fn zero(num_qubits: usize) -> Statevector {
        Statevector::basis(num_qubits, 0)
    }

    /// The computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^num_qubits` or `num_qubits` is out of range.
    pub fn basis(num_qubits: usize, index: usize) -> Statevector {
        assert!(
            num_qubits > 0 && num_qubits <= 30,
            "qubit count out of range"
        );
        let dim = 1usize << num_qubits;
        assert!(index < dim, "basis index out of range");
        let mut amps = vec![Complex64::ZERO; dim];
        amps[index] = Complex64::ONE;
        Statevector { num_qubits, amps }
    }

    /// Wraps raw amplitudes, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two ≥ 2 or the vector has
    /// (numerically) zero norm.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Statevector {
        let dim = amps.len();
        assert!(dim >= 2 && dim.is_power_of_two(), "length must be 2^n");
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 1e-12, "cannot normalize the zero vector");
        let amps = amps.iter().map(|&a| a / norm).collect();
        Statevector {
            num_qubits: dim.trailing_zeros() as usize,
            amps,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitudes (length `2^n`).
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// `|⟨index|ψ⟩|²`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// The squared norm (1 for a valid state).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics on qubit-count mismatch.
    pub fn inner(&self, other: &Statevector) -> Complex64 {
        assert_eq!(self.num_qubits, other.num_qubits, "qubit count mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &Statevector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Applies a single gate in place.
    pub fn apply(&mut self, gate: &Gate) {
        apply_gate(&mut self.amps, gate);
    }

    /// Applies a whole circuit in place.
    ///
    /// # Panics
    ///
    /// Panics on register-width mismatch.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits,
            "register width mismatch"
        );
        for g in circuit.iter() {
            self.apply(g);
        }
    }

    /// Applies a Pauli string (a unitary) in place.
    ///
    /// `P|b⟩ = i^{#Y} (−1)^{|b ∧ z|} |b ⊕ x⟩` in the symplectic form.
    pub fn apply_pauli(&mut self, p: &PauliString) {
        assert_eq!(p.num_qubits(), self.num_qubits, "qubit count mismatch");
        let x = p.x_mask() as usize;
        let z = p.z_mask() as usize;
        let y_phase = Complex64::i_pow((p.x_mask() & p.z_mask()).count_ones() as i64);
        let dim = self.amps.len();
        let mut out = vec![Complex64::ZERO; dim];
        for (b, &amp) in self.amps.iter().enumerate() {
            let sign = if (b & z).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            out[b ^ x] = amp * y_phase * sign;
        }
        self.amps = out;
    }

    /// `⟨ψ|P|ψ⟩` for one Pauli string, in O(2ⁿ).
    pub fn expectation_pauli(&self, p: &PauliString) -> Complex64 {
        assert_eq!(p.num_qubits(), self.num_qubits, "qubit count mismatch");
        let x = p.x_mask() as usize;
        let z = p.z_mask() as usize;
        let y_phase = Complex64::i_pow((p.x_mask() & p.z_mask()).count_ones() as i64);
        let mut acc = Complex64::ZERO;
        for (b, &amp) in self.amps.iter().enumerate() {
            let sign = if (b & z).count_ones().is_multiple_of(2) {
                1.0
            } else {
                -1.0
            };
            // ⟨b ⊕ x| gets amplitude y_phase·sign·amp.
            acc += self.amps[b ^ x].conj() * amp * y_phase * sign;
        }
        acc
    }

    /// `⟨ψ|H|ψ⟩` for a Pauli sum.
    pub fn expectation(&self, h: &PauliSum) -> Complex64 {
        h.iter().map(|(p, w)| w * self.expectation_pauli(p)).sum()
    }

    /// Samples a basis state according to `|ψ|²`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let r: f64 = rng.gen();
        let mut acc = 0.0;
        for (idx, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return idx;
            }
        }
        self.amps.len() - 1 // numerical tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit::circuit_unitary;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basis_state_probabilities() {
        let psi = Statevector::basis(3, 0b101);
        assert!((psi.probability(0b101) - 1.0).abs() < 1e-15);
        assert!((psi.norm_sqr() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let psi =
            Statevector::from_amplitudes(vec![Complex64::from_re(3.0), Complex64::from_re(4.0)]);
        assert!((psi.probability(0) - 9.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn circuit_application_matches_unitary() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        c.push(Gate::Rz(1, 0.7));
        let u = circuit_unitary(&c);
        for col in 0..4 {
            let mut psi = Statevector::basis(2, col);
            psi.apply_circuit(&c);
            for row in 0..4 {
                assert!(psi.amplitudes()[row].approx_eq(u[(row, col)], 1e-12));
            }
        }
    }

    #[test]
    fn apply_pauli_matches_matrix() {
        let p: PauliString = "YZ".parse().unwrap();
        let m = p.to_matrix();
        for col in 0..4 {
            let mut psi = Statevector::basis(2, col);
            psi.apply_pauli(&p);
            for row in 0..4 {
                assert!(
                    psi.amplitudes()[row].approx_eq(m[(row, col)], 1e-12),
                    "row {row} col {col}"
                );
            }
        }
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut bell = Circuit::new(2);
        bell.push(Gate::H(0));
        bell.push(Gate::Cnot {
            control: 0,
            target: 1,
        });
        let mut psi = Statevector::zero(2);
        psi.apply_circuit(&bell);
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[psi.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0b01], 0);
        assert_eq!(counts[0b10], 0);
        let frac = counts[0b00] as f64 / 4000.0;
        assert!((frac - 0.5).abs() < 0.05, "{frac}");
    }

    #[test]
    fn fidelity_of_orthogonal_states() {
        let a = Statevector::basis(2, 0);
        let b = Statevector::basis(2, 3);
        assert!(a.fidelity(&b) < 1e-15);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-15);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_expectation_matches_matrix(ops in proptest::collection::vec(0..4u8, 2..4),
                                           seed in 0u64..1000) {
            let p = PauliString::from_ops(
                &ops.iter().map(|&o| pauli::Pauli::from_xz(o & 2 != 0, o & 1 != 0)).collect::<Vec<_>>(),
            );
            let n = p.num_qubits();
            // Random state from a few gates.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut c = Circuit::new(n);
            for q in 0..n {
                c.push(Gate::Ry(q, rand::Rng::gen_range(&mut rng, -3.0..3.0)));
            }
            for q in 1..n {
                c.push(Gate::Cnot { control: q - 1, target: q });
            }
            let mut psi = Statevector::zero(n);
            psi.apply_circuit(&c);
            // Reference: ⟨ψ|P|ψ⟩ via dense matrix.
            let pv = p.to_matrix().mul_vec(psi.amplitudes());
            let mut reference = Complex64::ZERO;
            for (a, b) in psi.amplitudes().iter().zip(&pv) {
                reference += a.conj() * *b;
            }
            prop_assert!(psi.expectation_pauli(&p).approx_eq(reference, 1e-10));
        }
    }
}

//! Algorithm 2: simulated-annealing assignment of Majorana pairs.
//!
//! At scale, encoding the Hamiltonian-dependent weight in SAT explodes
//! (second-quantization term counts grow as O(N⁴) for electronic
//! structure/SYK — Section 4.2). The paper's workaround: solve the
//! *Hamiltonian-independent* problem once, then search over the assignment
//! of Majorana *pairs* to modes with simulated annealing, using the
//! Hamiltonian's Pauli weight as the energy. Swapping whole pairs keeps
//! the vacuum pairing intact.

use encodings::weight::structure_weight;
use encodings::{Encoding, MajoranaEncoding};
use fermion::MajoranaMonomial;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sat::CancelToken;

/// Annealing-schedule parameters (paper Algorithm 2).
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// Initial temperature `T₀`.
    pub t0: f64,
    /// Final temperature `T₁`.
    pub t1: f64,
    /// Linear temperature decrement `α` per outer step.
    pub alpha: f64,
    /// Swaps attempted per temperature.
    pub iterations: usize,
    /// Boltzmann scale `k` in the acceptance test.
    pub k: f64,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
    /// Cooperative cancellation: when raised, the schedule stops at the
    /// next swap and the best pairing so far is returned with
    /// [`AnnealOutcome::cancelled`] set.
    pub cancel: Option<CancelToken>,
    /// Initial temperature for *re-seeded* schedules. The portfolio
    /// engine's annealing lane does not only start from a classical base:
    /// whenever a concurrent lane publishes a strictly better incumbent,
    /// the lane re-anneals from that incumbent. Those restarts begin from
    /// an already-good assignment, so they cool from this (lower)
    /// temperature instead of [`t0`](AnnealConfig::t0). `None` disables
    /// mid-race re-seeding (the lane anneals its base once and exits).
    pub reseed_t0: Option<f64>,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            t0: 5.0,
            t1: 0.05,
            alpha: 0.05,
            iterations: 60,
            k: 1.0,
            seed: 0xF00D,
            cancel: None,
            reseed_t0: Some(1.0),
        }
    }
}

/// Result of [`anneal_pairing`].
#[derive(Debug, Clone)]
pub struct AnnealOutcome {
    /// The best pairing found, applied to the input encoding.
    pub encoding: MajoranaEncoding,
    /// Its Hamiltonian-dependent weight.
    pub weight: usize,
    /// The weight of the input assignment (identity permutation).
    pub initial_weight: usize,
    /// Accepted moves across the whole schedule.
    pub accepted_moves: usize,
    /// Total energy evaluations.
    pub evaluations: usize,
    /// True when the schedule was stopped early by its cancellation token.
    pub cancelled: bool,
}

/// Runs Algorithm 2: anneals the mode-to-pair assignment of `encoding`
/// against the Hamiltonian structure `monomials`.
///
/// # Panics
///
/// Panics if config temperatures/step are non-positive.
///
/// # Example
///
/// ```
/// use fermihedral::anneal::{anneal_pairing, AnnealConfig};
/// use encodings::{Encoding, LinearEncoding, MajoranaEncoding};
/// use fermion::MajoranaMonomial;
///
/// // Structure touching only modes 0,1 — annealing can move cheap strings
/// // onto the touched modes.
/// let jw = LinearEncoding::jordan_wigner(4);
/// let enc = MajoranaEncoding::new("jw", jw.majoranas()).unwrap();
/// let monomials = vec![MajoranaMonomial::from_sorted(vec![6, 7])];
/// let out = anneal_pairing(&enc, &monomials, &AnnealConfig::default());
/// assert!(out.weight <= out.initial_weight);
/// ```
pub fn anneal_pairing(
    encoding: &MajoranaEncoding,
    monomials: &[MajoranaMonomial],
    config: &AnnealConfig,
) -> AnnealOutcome {
    assert!(
        config.t0 > 0.0 && config.t1 > 0.0,
        "temperatures must be positive"
    );
    assert!(config.alpha > 0.0, "temperature step must be positive");

    let n = encoding.num_modes();
    let strings = encoding.majoranas();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Energy of a pairing: relabel each monomial's mode pairs through the
    // permutation, then take the structural weight.
    let energy = |perm: &[usize]| -> usize {
        let relabeled: Vec<MajoranaMonomial> = monomials
            .iter()
            .map(|m| {
                let mut idx: Vec<u32> = m
                    .indices()
                    .iter()
                    .map(|&i| {
                        let mode = (i / 2) as usize;
                        let bit = i % 2;
                        (2 * perm[mode]) as u32 + bit
                    })
                    .collect();
                idx.sort_unstable();
                MajoranaMonomial::from_sorted(idx)
            })
            .collect();
        structure_weight(&strings, &relabeled)
    };

    let mut perm: Vec<usize> = (0..n).collect();
    let initial_weight = energy(&perm);
    let mut current = initial_weight;
    let mut best_perm = perm.clone();
    let mut best = current;
    let mut accepted = 0usize;
    let mut evaluations = 1usize;

    let mut cancelled = false;
    let mut temp = config.t0;
    'schedule: while temp >= config.t1 && n > 1 {
        for _ in 0..config.iterations {
            if config
                .cancel
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
            {
                cancelled = true;
                break 'schedule;
            }
            let x = rng.gen_range(0..n);
            let y = rng.gen_range(0..n);
            if x == y {
                continue;
            }
            perm.swap(x, y);
            let candidate = energy(&perm);
            evaluations += 1;
            let delta = candidate as f64 - current as f64;
            // Paper's acceptance test: undo when random() ≥ e^{−Δ·k/T}.
            if rng.gen::<f64>() >= (-delta * config.k / temp).exp() {
                perm.swap(x, y); // undo
            } else {
                current = candidate;
                accepted += 1;
                if current < best {
                    best = current;
                    best_perm = perm.clone();
                }
            }
        }
        temp -= config.alpha;
    }

    // `permuted_pairs` semantics: new mode j takes the pair formerly at
    // perm[j]. The energy function scored monomial index 2j+b against
    // string 2·perm[j]+b — exactly the same relabeling, so the best
    // permutation applies directly.
    let encoding = encoding.permuted_pairs(&best_perm);

    AnnealOutcome {
        encoding,
        weight: best,
        initial_weight,
        accepted_moves: accepted,
        evaluations,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encodings::weight::hamiltonian_weight;
    use encodings::LinearEncoding;
    use fermion::models::{FermiHubbard, Lattice};
    use fermion::MajoranaSum;

    fn jw_encoding(n: usize) -> MajoranaEncoding {
        MajoranaEncoding::new("jw", LinearEncoding::jordan_wigner(n).majoranas()).unwrap()
    }

    #[test]
    fn permutation_relabeling_consistent_with_strings() {
        // The outcome's reported weight must equal the weight of the
        // returned encoding measured independently.
        let enc = jw_encoding(4);
        let model = FermiHubbard::new(
            Lattice::Chain {
                sites: 2,
                periodic: false,
            },
            1.0,
            2.0,
        );
        let h = MajoranaSum::from_fermion(&model.hamiltonian());
        let monomials: Vec<MajoranaMonomial> = h.weight_structure().into_iter().cloned().collect();
        let out = anneal_pairing(&enc, &monomials, &AnnealConfig::default());
        let direct = hamiltonian_weight(&out.encoding.majoranas(), &h);
        assert_eq!(out.weight, direct);
    }

    #[test]
    fn relabeling_consistent_for_non_involution_permutations() {
        // Asymmetric single-Majorana structure over 6 modes: the optimum is
        // generally a non-involution permutation, which catches any
        // perm-vs-inverse confusion between the energy function and the
        // string relabeling. Check the invariant across several seeds.
        let enc = jw_encoding(6);
        let monomials: Vec<MajoranaMonomial> = vec![
            MajoranaMonomial::from_sorted(vec![10]),
            MajoranaMonomial::from_sorted(vec![11]),
            MajoranaMonomial::from_sorted(vec![8]),
            MajoranaMonomial::from_sorted(vec![8, 11]),
            MajoranaMonomial::from_sorted(vec![4, 10]),
            MajoranaMonomial::from_sorted(vec![2]),
        ];
        for seed in 0..6 {
            let cfg = AnnealConfig {
                seed,
                ..AnnealConfig::default()
            };
            let out = anneal_pairing(&enc, &monomials, &cfg);
            let direct = encodings::weight::structure_weight(&out.encoding.majoranas(), &monomials);
            assert_eq!(out.weight, direct, "seed {seed}");
        }
    }

    #[test]
    fn annealing_never_worse_than_start() {
        let enc = jw_encoding(5);
        // Structure touching only mode 4: JW strings there weigh 5, but the
        // pairing that relabels mode 4 to mode 0 costs 1 per monomial.
        let monomials = vec![
            MajoranaMonomial::from_sorted(vec![8]),
            MajoranaMonomial::from_sorted(vec![9]),
        ];
        let out = anneal_pairing(&enc, &monomials, &AnnealConfig::default());
        assert_eq!(out.initial_weight, 10);
        assert!(out.weight <= out.initial_weight);
        assert_eq!(
            out.weight, 2,
            "annealing must find the mode-0 relabeling (weight 1 + 1)"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let enc = jw_encoding(4);
        let monomials = vec![
            MajoranaMonomial::from_sorted(vec![0, 3]),
            MajoranaMonomial::from_sorted(vec![4, 7]),
            MajoranaMonomial::from_sorted(vec![1, 2, 5, 6]),
        ];
        let a = anneal_pairing(&enc, &monomials, &AnnealConfig::default());
        let b = anneal_pairing(&enc, &monomials, &AnnealConfig::default());
        assert_eq!(a.weight, b.weight);
        assert_eq!(a.encoding.majoranas(), b.encoding.majoranas());
        let mut other = AnnealConfig::default();
        other.seed ^= 1;
        let _ = anneal_pairing(&enc, &monomials, &other); // just runs
    }

    #[test]
    fn single_mode_is_noop() {
        let enc = jw_encoding(1);
        let monomials = vec![MajoranaMonomial::from_sorted(vec![0, 1])];
        let out = anneal_pairing(&enc, &monomials, &AnnealConfig::default());
        assert_eq!(out.weight, out.initial_weight);
        assert_eq!(out.accepted_moves, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_schedule_rejected() {
        let enc = jw_encoding(2);
        let cfg = AnnealConfig {
            alpha: 0.0,
            ..Default::default()
        };
        let _ = anneal_pairing(&enc, &[], &cfg);
    }
}

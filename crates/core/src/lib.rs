//! Fermihedral: SAT-optimal Fermion-to-qubit encoding.
//!
//! This crate is the paper's contribution. It compiles the constraints and
//! objectives of Fermion-to-qubit encoding into Boolean satisfiability:
//!
//! * [`layout`] — the variable layout: two Boolean variables per Pauli
//!   operator per Majorana string (paper Eq. 7).
//! * [`instance`] — constraint generation (Sections 3.3–3.7): pairwise
//!   anticommutativity as XOR chains, algebraic independence over the
//!   subset lattice with shared prefixes, the vacuum-state XY-pair
//!   condition, and either the Hamiltonian-independent or the
//!   Hamiltonian-dependent Pauli-weight objective through a totalizer.
//! * [`descent`] — Algorithm 1: iteratively tightening the weight bound via
//!   solver assumptions until UNSAT proves optimality (or a budget stops
//!   the search with the best-so-far encoding).
//! * [`enumerate`] — enumerating distinct optimal solutions with blocking
//!   clauses (used by the paper's Figure 4 independence study).
//! * [`anneal`] — Algorithm 2: simulated-annealing assignment of Majorana
//!   pairs to modes, replacing the exponential Hamiltonian-dependent clause
//!   set at scale (Section 4.2).
//!
//! # Example: the optimal 2-mode encoding
//!
//! ```
//! use fermihedral::{EncodingProblem, Objective};
//! use fermihedral::descent::{solve_optimal, DescentConfig};
//!
//! let problem = EncodingProblem::new(2, Objective::MajoranaWeight)
//!     .with_algebraic_independence(true)
//!     .with_vacuum_condition(true);
//! let outcome = solve_optimal(&problem, &DescentConfig::default());
//! let best = outcome.best.expect("2 modes is solvable instantly");
//! assert_eq!(best.weight, 6); // N=2 optimum equals Jordan-Wigner's 6
//! assert!(outcome.optimal_proved);
//! ```

pub mod anneal;
pub mod descent;
pub mod enumerate;
pub mod instance;
pub mod layout;

pub use anneal::{anneal_pairing, AnnealConfig, AnnealOutcome};
pub use descent::{solve_optimal, DescentConfig, DescentOutcome};
pub use instance::{EncodingInstance, EncodingProblem, InstanceStats, Objective};
pub use layout::VarLayout;

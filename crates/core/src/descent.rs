//! Algorithm 1: weight descent to the optimal encoding.
//!
//! A SAT solver decides feasibility at a fixed weight bound; optimality
//! comes from *descending* the bound until UNSAT:
//!
//! 1. start from a known-feasible bound (Bravyi-Kitaev's weight — the
//!    paper's warm start, Section 3.6);
//! 2. solve under the assumption `weight < w`; a model yields an encoding
//!    of some weight `w′ < w`;
//! 3. set `w = w′` and repeat until the solver proves UNSAT (optimality
//!    certificate) or a time/conflict budget runs out (best-so-far is an
//!    upper bound, as in the paper's timeout-terminated runs).
//!
//! Bounds are solver *assumptions* over one totalizer, so learnt clauses
//! persist across descent steps.

use crate::instance::{EncodingInstance, EncodingProblem, Objective};
use encodings::weight::{majorana_weight, structure_weight};
use encodings::{Encoding, LinearEncoding, MajoranaEncoding};
use pauli::{PauliString, PhasedString};
use sat::CancelToken;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A weight bound shared between concurrent searches of the *same*
/// problem (the portfolio engine's incumbent weight).
///
/// All clones share one atomic `usize` holding the best (lowest) objective
/// weight any cooperating worker has achieved so far. A descent
/// configured with a shared bound starts each step from
/// `min(own bound, shared bound)`, so one worker's improvement immediately
/// tightens every other worker's next assumption, and publishes its own
/// improvements back with [`tighten`](SharedBound::tighten).
#[derive(Debug, Clone)]
pub struct SharedBound {
    best: Arc<AtomicUsize>,
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

impl SharedBound {
    /// An unconstrained bound (`usize::MAX`).
    pub fn new() -> SharedBound {
        SharedBound {
            best: Arc::new(AtomicUsize::new(usize::MAX)),
        }
    }

    /// A bound primed with a known-feasible weight.
    pub fn with_weight(weight: usize) -> SharedBound {
        SharedBound {
            best: Arc::new(AtomicUsize::new(weight)),
        }
    }

    /// The current best weight (`usize::MAX` when nothing was published).
    pub fn get(&self) -> usize {
        self.best.load(Ordering::Relaxed)
    }

    /// Publishes an achieved weight; keeps the minimum. Returns `true`
    /// when `weight` improved the shared value.
    pub fn tighten(&self, weight: usize) -> bool {
        self.best.fetch_min(weight, Ordering::Relaxed) > weight
    }
}

/// Budgets and options for [`solve_optimal`].
#[derive(Debug, Clone)]
pub struct DescentConfig {
    /// Starting bound: the search assumes `weight < initial_weight`.
    /// `None` derives Bravyi-Kitaev's weight + 1 (paper Section 3.6).
    pub initial_weight: Option<usize>,
    /// Wall-clock limit per solver call.
    pub solve_timeout: Option<Duration>,
    /// Conflict limit per solver call.
    pub conflict_budget: Option<u64>,
    /// Overall wall-clock limit for the descent.
    pub total_timeout: Option<Duration>,
    /// Cooperative cancellation: when raised, the descent stops at the next
    /// checkpoint (including *inside* a running solver call) and returns
    /// best-so-far with [`DescentOutcome::cancelled`] set.
    pub cancel: Option<CancelToken>,
    /// Incumbent weight shared with concurrent searches of the same
    /// problem; see [`SharedBound`].
    pub shared_bound: Option<SharedBound>,
    /// When a *per-call* budget (`conflict_budget`/`solve_timeout`) runs
    /// out, keep descending with a fresh call — re-reading the shared bound
    /// — instead of terminating. The learnt-clause database persists across
    /// calls. Termination then comes from `total_timeout`, `cancel`, or an
    /// UNSAT certificate; configure at least one, or the descent can spin
    /// on an unsolvable step forever.
    pub persist_on_budget: bool,
    /// Seed for the solver's branching randomization (portfolio
    /// diversity). `None` leaves the solver deterministic.
    pub solver_seed: Option<u64>,
    /// Fraction of solver decisions made on a random variable
    /// ([`sat::Solver::set_random_branch`]). Ignored without effect when 0.
    pub random_branch: f64,
    /// Check GF(2) algebraic independence of every model and reject
    /// dependent ones with a blocking clause. This is the safety net for
    /// the *SAT w/o Alg.* mode (Section 4.1): invalid models occur with
    /// probability `4^{-N}`, and one cheap rank check filters them without
    /// the `4^N` clauses.
    pub validate_independence: bool,
    /// Seed the solver's phase saving with the Bravyi-Kitaev assignment so
    /// the first solver call walks straight to a known-feasible model. At
    /// 10+ modes the anticommutativity XOR system is otherwise hard to
    /// satisfy from a cold start.
    pub bk_phase_hint: bool,
    /// Explicit warm-start strings (e.g. a cached best-so-far solution,
    /// or a smaller optimum lifted through `encodings::embed`).
    ///
    /// Precedence over `bk_phase_hint` is explicit: a *valid* hint —
    /// `2N` strings on `N` qubits forming an anticommuting, GF(2)-
    /// independent encoding — always wins. An invalid hint is **rejected**
    /// (recorded as [`DescentOutcome::hint_rejected`], so callers can
    /// surface the event) and the descent falls back to the Bravyi-Kitaev
    /// hint when `bk_phase_hint` is set, rather than silently seeding the
    /// solver with phases no feasible model has.
    pub phase_hint: Option<Vec<PauliString>>,
    /// Restart schedule for the lane's solver (`None` = the solver
    /// default, Luby with unit 128). Portfolio lanes diversify restart
    /// behavior through this.
    pub restart_policy: Option<sat::RestartPolicyKind>,
    /// Membership in a portfolio clause exchange
    /// ([`sat::SharedContext`]): the lane's solver exports its short
    /// learnt clauses and imports the peers' at restart boundaries. The
    /// one solver persists across all descent steps, so clauses learned
    /// at weight bound `k` seed the `k−1` round; exports are tagged with
    /// the bound they assumed and importers defer looser-bound clauses
    /// until their own descent catches up.
    pub clause_exchange: Option<sat::LaneHandle>,
    /// Bounds for the solver's adaptive export-LBD filter. `None` keeps
    /// whatever the exchange context configures (its own bounds when
    /// `clause_exchange` is set, the solver default otherwise); `Some`
    /// overrides them per lane, which is how portfolio lanes start tight
    /// or loose.
    pub export_lbd: Option<sat::ExportLbd>,
    /// Live witness publication: invoked with every *improved* encoding
    /// the moment the solver hands back its model, while the descent
    /// keeps running. `shared_bound` ships only the weight; anyone
    /// racing across a crash boundary needs the strings to travel too,
    /// or a killed worker takes its incumbent to the grave while the
    /// weight it already broadcast steers everyone else below a witness
    /// nobody holds.
    pub on_improve: Option<ImproveHook>,
}

/// A cloneable callback receiving each improved [`BestEncoding`] live
/// (see [`DescentConfig::on_improve`]). Wrapped so `DescentConfig` can
/// stay `Debug + Clone`.
#[derive(Clone)]
pub struct ImproveHook(Arc<dyn Fn(&BestEncoding) + Send + Sync>);

impl ImproveHook {
    /// Wraps a callback; it runs on the descent thread, so keep it
    /// cheap (store-and-signal, not recompute).
    pub fn new(hook: impl Fn(&BestEncoding) + Send + Sync + 'static) -> ImproveHook {
        ImproveHook(Arc::new(hook))
    }

    /// Invokes the callback.
    pub fn call(&self, best: &BestEncoding) {
        (self.0)(best)
    }
}

impl std::fmt::Debug for ImproveHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ImproveHook(..)")
    }
}

impl Default for DescentConfig {
    fn default() -> Self {
        DescentConfig {
            initial_weight: None,
            solve_timeout: None,
            conflict_budget: None,
            total_timeout: None,
            validate_independence: true,
            bk_phase_hint: true,
            phase_hint: None,
            cancel: None,
            shared_bound: None,
            persist_on_budget: false,
            solver_seed: None,
            random_branch: 0.0,
            restart_policy: None,
            clause_exchange: None,
            export_lbd: None,
            on_improve: None,
        }
    }
}

/// One solver call in the descent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DescentStep {
    /// The bound assumed for this call (`weight < bound`).
    pub bound: usize,
    /// What the solver returned.
    pub result: StepResult,
    /// Wall-clock time of the call.
    pub elapsed: Duration,
}

/// Outcome of one descent step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// SAT: an encoding with this objective weight was found.
    Improved(usize),
    /// UNSAT: no encoding below the bound exists.
    Exhausted,
    /// The per-call budget ran out.
    BudgetExceeded,
    /// The cancellation token was raised during this call.
    Cancelled,
}

/// The best encoding found by a descent.
#[derive(Debug, Clone)]
pub struct BestEncoding {
    /// The `2N` Majorana strings.
    pub strings: Vec<PauliString>,
    /// Its objective weight.
    pub weight: usize,
}

impl BestEncoding {
    /// Wraps the strings as a [`MajoranaEncoding`] for the mapping and
    /// validation machinery.
    pub fn to_encoding(&self, name: impl Into<String>) -> MajoranaEncoding {
        MajoranaEncoding::from_strings(name, self.strings.iter().cloned())
            .expect("descent produces 2N equal-width strings")
    }
}

/// Result of [`solve_optimal`].
#[derive(Debug, Clone)]
pub struct DescentOutcome {
    /// Best encoding found, if any solver call succeeded.
    pub best: Option<BestEncoding>,
    /// True when UNSAT certified that `best` is optimal.
    pub optimal_proved: bool,
    /// Per-call log.
    pub steps: Vec<DescentStep>,
    /// When an UNSAT certificate was obtained: the bound it refuted — no
    /// encoding of the problem has objective weight below this value. Set
    /// even when this worker holds no (or a worse) encoding itself, which
    /// happens under a [`SharedBound`] when *another* worker owns the
    /// incumbent; the portfolio engine combines the two facts.
    pub proved_floor: Option<usize>,
    /// True when the descent was stopped by its cancellation token.
    pub cancelled: bool,
    /// True when [`DescentConfig::phase_hint`] was supplied but failed
    /// validation and was rejected (the Bravyi-Kitaev fallback applied
    /// instead, when configured).
    pub hint_rejected: bool,
    /// Final statistics of the lane's solver — conflicts/decisions plus
    /// the clause-exchange traffic (exported/imported/promoted) when the
    /// descent ran inside a portfolio context.
    pub solver_stats: sat::SolverStats,
}

impl DescentOutcome {
    /// The optimal/best weight if any encoding was found.
    pub fn weight(&self) -> Option<usize> {
        self.best.as_ref().map(|b| b.weight)
    }
}

/// GF(2) algebraic independence of decoded strings (cheap rank check).
fn independent(strings: &[PauliString]) -> bool {
    let phased: Vec<PhasedString> = strings.iter().cloned().map(PhasedString::from).collect();
    encodings::validate::algebraically_independent(&phased)
}

/// Whether an explicit phase hint is usable for this instance: the right
/// shape (`2N` strings on `N` qubits) and a genuinely valid encoding
/// (pairwise anticommuting, GF(2) independent). Phases from anything
/// weaker would steer the solver toward assignments no model has.
fn hint_usable(instance: &EncodingInstance, strings: &[PauliString]) -> bool {
    let layout = instance.layout();
    if strings.len() != layout.num_strings()
        || strings.iter().any(|s| s.num_qubits() != layout.num_modes())
    {
        return false;
    }
    let phased: Vec<PhasedString> = strings.iter().cloned().map(PhasedString::from).collect();
    encodings::validate::all_anticommute(&phased)
        && encodings::validate::algebraically_independent(&phased)
}

/// Seeds the solver's saved phases with an encoding's primary-variable
/// assignment (paper Eq. 7 bits).
fn apply_phase_hint(
    solver: &mut sat::Solver,
    instance: &EncodingInstance,
    strings: &[PhasedString],
) {
    let layout = instance.layout();
    debug_assert_eq!(strings.len(), layout.num_strings());
    for (s, string) in strings.iter().enumerate() {
        for q in 0..layout.num_modes() {
            let (b1, b2) = pauli::encoding::op_to_bits(string.string().get(q));
            solver.set_phase(layout.b1(s, q), b1);
            solver.set_phase(layout.b2(s, q), b2);
            // Decide primaries before Tseitin auxiliaries: once all
            // primaries hold the hinted assignment, every gate output
            // follows by unit propagation without conflicts.
            solver.boost_activity(layout.b1(s, q), 1.0);
            solver.boost_activity(layout.b2(s, q), 1.0);
        }
    }
}

/// The warm-start weight: Bravyi-Kitaev evaluated under the problem's own
/// objective.
pub fn bravyi_kitaev_bound(problem: &EncodingProblem) -> usize {
    let bk = LinearEncoding::bravyi_kitaev(problem.num_modes());
    let strings = bk.majoranas();
    match problem.objective() {
        Objective::MajoranaWeight => majorana_weight(&strings),
        Objective::HamiltonianWeight(monomials) => structure_weight(&strings, monomials),
    }
}

/// Runs Algorithm 1 on a problem.
///
/// # Example
///
/// ```
/// use fermihedral::{EncodingProblem, Objective};
/// use fermihedral::descent::{solve_optimal, DescentConfig};
///
/// let problem = EncodingProblem::full_sat(1, Objective::MajoranaWeight);
/// let outcome = solve_optimal(&problem, &DescentConfig::default());
/// assert_eq!(outcome.weight(), Some(2)); // X, Y is optimal for one mode
/// assert!(outcome.optimal_proved);
/// ```
pub fn solve_optimal(problem: &EncodingProblem, config: &DescentConfig) -> DescentOutcome {
    let instance = problem.build();
    solve_optimal_instance(&instance, config)
}

/// Runs Algorithm 1 on a pre-built instance (lets callers reuse the CNF or
/// record its statistics).
pub fn solve_optimal_instance(
    instance: &EncodingInstance,
    config: &DescentConfig,
) -> DescentOutcome {
    let started = Instant::now();
    let mut solver = instance.solver();
    solver.set_conflict_budget(config.conflict_budget);
    if let Some(cancel) = &config.cancel {
        solver.set_stop_flag(Some(cancel.flag()));
    }
    if let Some(seed) = config.solver_seed {
        solver.set_random_seed(seed);
    }
    if config.random_branch > 0.0 {
        solver.set_random_branch(config.random_branch);
    }
    if let Some(kind) = &config.restart_policy {
        solver.set_restart_policy(kind.build());
    }
    if let Some(handle) = &config.clause_exchange {
        solver.set_clause_exchange(Some(handle.clone()));
    }
    if let Some(bounds) = config.export_lbd {
        // After set_clause_exchange: the lane override beats the bounds
        // adopted from the exchange context.
        solver.set_export_lbd(bounds);
    }
    // Hint precedence: an explicit, *validated* hint beats the BK hint;
    // an invalid explicit hint is rejected (and reported) rather than
    // silently applied or silently shadowing the BK fallback.
    let mut hint_rejected = false;
    let explicit_hint = config.phase_hint.as_deref().filter(|hint| {
        let usable = hint_usable(instance, hint);
        hint_rejected = !usable;
        usable
    });
    if let Some(hint) = explicit_hint {
        let phased: Vec<PhasedString> = hint.iter().cloned().map(PhasedString::from).collect();
        apply_phase_hint(&mut solver, instance, &phased);
    } else if config.bk_phase_hint {
        apply_phase_hint(
            &mut solver,
            instance,
            &LinearEncoding::bravyi_kitaev(instance.problem().num_modes()).majoranas(),
        );
    }

    let mut best: Option<BestEncoding> = None;
    let mut steps = Vec::new();
    let mut optimal_proved = false;
    let mut proved_floor = None;
    let mut cancelled = false;

    // Initial bound: BK + 1 so the first call admits BK itself; clamp to
    // the totalizer width + 1 (anything above is a free pass).
    let mut bound = config
        .initial_weight
        .unwrap_or_else(|| bravyi_kitaev_bound(instance.problem()) + 1)
        .min(instance.weight_upper_bound() + 1);

    loop {
        if let Some(cancel) = &config.cancel {
            if cancel.is_cancelled() {
                cancelled = true;
                break;
            }
        }
        // Another worker's incumbent tightens our next assumption: only
        // strictly better encodings are worth finding.
        if let Some(shared) = &config.shared_bound {
            bound = bound.min(shared.get());
        }
        if bound == 0 {
            // A weight-0 encoding is impossible (strings would be identity);
            // reaching 0 means weight 1 was achieved... which cannot happen
            // for ≥1 mode, but guard against pathological objectives.
            optimal_proved = true;
            break;
        }
        // Remaining overall budget.
        let mut per_call = config.solve_timeout;
        if let Some(total) = config.total_timeout {
            let left = total.saturating_sub(started.elapsed());
            if left.is_zero() {
                break;
            }
            per_call = Some(per_call.map_or(left, |p| p.min(left)));
        }
        solver.set_timeout(per_call);

        let assumptions: Vec<sat::Lit> = instance
            .assume_weight_less_than(bound)
            .into_iter()
            .collect();
        // Tag this call's clause exports with the bound it assumes (no
        // assumption literal — a bound beyond the totalizer — exports
        // unconditionally valid clauses).
        solver.set_bound_tag((!assumptions.is_empty()).then_some(bound));
        let stats_before = solver.stats();
        let mut bound_span = telemetry::span("descent.bound");
        let call_start = Instant::now();
        let result = solver.solve_with_assumptions(&assumptions);
        let elapsed = call_start.elapsed();
        if bound_span.active() {
            let after = solver.stats();
            bound_span.attr("bound", bound as u64);
            bound_span.attr(
                "outcome",
                match &result {
                    sat::SolveResult::Sat(_) => "sat",
                    sat::SolveResult::Unsat => "unsat",
                    sat::SolveResult::Unknown => "budget_exceeded",
                    sat::SolveResult::Interrupted => "cancelled",
                },
            );
            bound_span.attr(
                "exported_clauses",
                after.exported_clauses - stats_before.exported_clauses,
            );
            bound_span.attr(
                "imported_clauses",
                after.imported_clauses - stats_before.imported_clauses,
            );
            bound_span.attr(
                "promoted_clauses",
                after.promoted_clauses - stats_before.promoted_clauses,
            );
            bound_span.attr(
                "imported_reasons",
                after.imported_reasons - stats_before.imported_reasons,
            );
        }

        match result {
            sat::SolveResult::Sat(model) => {
                let strings = instance.decode(&model);
                if config.validate_independence && !independent(&strings) {
                    // Accidentally dependent model (probability 4^{-N} when
                    // the clause set was dropped): block it and retry the
                    // same bound.
                    let layout = *instance.layout();
                    let mut blocking = Vec::with_capacity(layout.num_primary_vars());
                    for s in 0..layout.num_strings() {
                        for q in 0..layout.num_modes() {
                            for var in [layout.b1(s, q), layout.b2(s, q)] {
                                blocking.push(var.lit(!model.value(var)));
                            }
                        }
                    }
                    solver.add_clause(blocking);
                    continue;
                }
                let weight = instance.measure_weight(&strings);
                debug_assert!(
                    weight < bound,
                    "solver returned weight {weight} under bound {bound}"
                );
                steps.push(DescentStep {
                    bound,
                    result: StepResult::Improved(weight),
                    elapsed,
                });
                bound = weight;
                best = Some(BestEncoding { strings, weight });
                if let Some(shared) = &config.shared_bound {
                    shared.tighten(weight);
                }
                if let Some(hook) = &config.on_improve {
                    hook.call(best.as_ref().expect("just set"));
                }
            }
            sat::SolveResult::Unsat => {
                steps.push(DescentStep {
                    bound,
                    result: StepResult::Exhausted,
                    elapsed,
                });
                proved_floor = Some(bound);
                // The certificate proves *our* best optimal only when it is
                // the encoding sitting exactly at the refuted bound; under a
                // shared bound the incumbent may live in another worker.
                optimal_proved = best.as_ref().is_some_and(|b| b.weight == bound);
                break;
            }
            sat::SolveResult::Unknown => {
                steps.push(DescentStep {
                    bound,
                    result: StepResult::BudgetExceeded,
                    elapsed,
                });
                if config.persist_on_budget {
                    // Keep grinding at the same step (learnt clauses are
                    // retained); the loop head re-checks cancellation, the
                    // shared bound, and the total timeout.
                    continue;
                }
                break;
            }
            sat::SolveResult::Interrupted => {
                steps.push(DescentStep {
                    bound,
                    result: StepResult::Cancelled,
                    elapsed,
                });
                cancelled = true;
                break;
            }
        }
    }

    DescentOutcome {
        best,
        optimal_proved,
        steps,
        proved_floor,
        cancelled,
        hint_rejected,
        solver_stats: solver.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use encodings::validate::validate_strings;
    use fermion::MajoranaMonomial;

    #[test]
    fn one_mode_optimum_proved() {
        let outcome = solve_optimal(
            &EncodingProblem::full_sat(1, Objective::MajoranaWeight),
            &DescentConfig::default(),
        );
        assert_eq!(outcome.weight(), Some(2));
        assert!(outcome.optimal_proved);
        let best = outcome.best.unwrap();
        let phased: Vec<PhasedString> = best
            .strings
            .iter()
            .cloned()
            .map(PhasedString::from)
            .collect();
        assert!(validate_strings(&phased).is_valid());
    }

    #[test]
    fn two_modes_optimum_is_jw() {
        let outcome = solve_optimal(
            &EncodingProblem::full_sat(2, Objective::MajoranaWeight),
            &DescentConfig::default(),
        );
        assert_eq!(outcome.weight(), Some(6));
        assert!(outcome.optimal_proved);
        // The descent must strictly improve every SAT step.
        let mut last = usize::MAX;
        for s in &outcome.steps {
            if let StepResult::Improved(w) = s.result {
                assert!(w < last);
                last = w;
            }
        }
    }

    #[test]
    fn warm_start_bound_matches_bk() {
        let p = EncodingProblem::new(4, Objective::MajoranaWeight);
        let bk = bravyi_kitaev_bound(&p);
        // BK weight for 4 modes: strings of the Fenwick tree; compare with
        // direct computation.
        let direct = majorana_weight(&LinearEncoding::bravyi_kitaev(4).majoranas());
        assert_eq!(bk, direct);
    }

    #[test]
    fn budget_exceeded_reports_best_so_far() {
        // With a tiny conflict budget, large-N descents stop early but
        // may still return whatever they found.
        let config = DescentConfig {
            conflict_budget: Some(1),
            ..DescentConfig::default()
        };
        let outcome = solve_optimal(&EncodingProblem::new(4, Objective::MajoranaWeight), &config);
        assert!(!outcome.optimal_proved);
        assert!(!outcome.steps.is_empty());
    }

    #[test]
    fn shared_bound_tightens_the_search() {
        // Prime the shared bound with the known N=2 optimum (6): the
        // descent must then *start* below BK, prove UNSAT at 6 in one
        // step, and return no encoding of its own (6 is not beatable).
        let shared = SharedBound::with_weight(6);
        let config = DescentConfig {
            shared_bound: Some(shared.clone()),
            ..DescentConfig::default()
        };
        let outcome = solve_optimal(
            &EncodingProblem::full_sat(2, Objective::MajoranaWeight),
            &config,
        );
        assert!(outcome.best.is_none(), "nothing below 6 exists");
        assert!(!outcome.optimal_proved, "this worker holds no incumbent");
        assert_eq!(outcome.proved_floor, Some(6));
        assert_eq!(shared.get(), 6);
    }

    #[test]
    fn improvements_are_published_to_the_shared_bound() {
        let shared = SharedBound::new();
        let config = DescentConfig {
            shared_bound: Some(shared.clone()),
            ..DescentConfig::default()
        };
        let outcome = solve_optimal(
            &EncodingProblem::full_sat(2, Objective::MajoranaWeight),
            &config,
        );
        assert_eq!(outcome.weight(), Some(6));
        assert!(outcome.optimal_proved);
        assert_eq!(shared.get(), 6);
        assert_eq!(outcome.proved_floor, Some(6));
    }

    #[test]
    fn pre_cancelled_descent_returns_immediately() {
        let cancel = sat::CancelToken::new();
        cancel.cancel();
        let config = DescentConfig {
            cancel: Some(cancel),
            ..DescentConfig::default()
        };
        let outcome = solve_optimal(
            &EncodingProblem::full_sat(3, Objective::MajoranaWeight),
            &config,
        );
        assert!(outcome.cancelled);
        assert!(outcome.best.is_none());
        assert!(outcome.steps.is_empty());
    }

    #[test]
    fn persist_on_budget_keeps_descending() {
        // A 1-conflict budget would normally terminate the descent almost
        // immediately; with persist_on_budget it must still reach and
        // prove the N=2 optimum (budget exhaustion only splits the work
        // into many solver calls).
        let config = DescentConfig {
            conflict_budget: Some(1),
            persist_on_budget: true,
            total_timeout: Some(Duration::from_secs(60)),
            ..DescentConfig::default()
        };
        let outcome = solve_optimal(
            &EncodingProblem::full_sat(2, Objective::MajoranaWeight),
            &config,
        );
        assert_eq!(outcome.weight(), Some(6));
        assert!(outcome.optimal_proved);
        assert!(
            outcome
                .steps
                .iter()
                .any(|s| s.result == StepResult::BudgetExceeded),
            "the tiny budget must have been exceeded at least once"
        );
    }

    #[test]
    fn descent_lanes_exchange_clauses_across_bounds() {
        // Lane 0 runs the whole descent first, exporting everything it
        // learns (no LBD filter). Lane 1 then repeats the descent in the
        // same context: it must import lane 0's clauses — promoting the
        // bound-tagged ones as its own bound catches up — and reach the
        // identical certified optimum.
        let ctx = sat::SharedContext::new(
            2,
            sat::ExchangeConfig {
                export_lbd: sat::ExportLbd::fixed(u32::MAX),
                max_shared_len: usize::MAX,
                capacity_per_lane: 1 << 14,
            },
        );
        let problem = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
        let lane0 = solve_optimal(
            &problem,
            &DescentConfig {
                clause_exchange: Some(ctx.handle(0)),
                ..DescentConfig::default()
            },
        );
        assert_eq!(lane0.weight(), Some(6));
        assert!(lane0.optimal_proved);
        assert!(
            lane0.solver_stats.exported_clauses > 0,
            "the UNSAT certificate at bound 6 must learn exportable clauses"
        );

        let lane1 = solve_optimal(
            &problem,
            &DescentConfig {
                clause_exchange: Some(ctx.handle(1)),
                restart_policy: Some(sat::RestartPolicyKind::Fixed { interval: 8 }),
                ..DescentConfig::default()
            },
        );
        assert_eq!(lane1.weight(), Some(6));
        assert!(lane1.optimal_proved);
        assert!(
            lane1.solver_stats.imported_clauses > 0,
            "lane 1 must consume lane 0's exports: {:?}",
            lane1.solver_stats
        );
    }

    #[test]
    fn valid_explicit_hint_wins_over_bk_and_is_not_rejected() {
        // Hint the N=2 descent with the known optimum (JW): the hint must
        // be accepted (not rejected) and the optimum still certified.
        let jw: Vec<PauliString> = LinearEncoding::jordan_wigner(2)
            .majoranas()
            .iter()
            .map(|p| p.string().clone())
            .collect();
        let config = DescentConfig {
            phase_hint: Some(jw),
            bk_phase_hint: true,
            ..DescentConfig::default()
        };
        let outcome = solve_optimal(
            &EncodingProblem::full_sat(2, Objective::MajoranaWeight),
            &config,
        );
        assert!(!outcome.hint_rejected);
        assert_eq!(outcome.weight(), Some(6));
        assert!(outcome.optimal_proved);
    }

    #[test]
    fn invalid_explicit_hint_is_rejected_and_bk_fallback_applies() {
        // Regression: a deliberately-invalid hint used to be applied
        // silently, shadowing `bk_phase_hint` with phases no feasible
        // model has. It must now be rejected (flagged) and the descent
        // must still certify the optimum from the BK fallback.
        let problem = EncodingProblem::full_sat(2, Objective::MajoranaWeight);
        let bad_hints: Vec<Vec<PauliString>> = vec![
            // Wrong shape: 3 strings.
            ["IX", "IY", "XZ"]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect(),
            // Wrong width: strings on 3 qubits for a 2-mode problem.
            ["IIX", "IIY", "IXZ", "IYZ"]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect(),
            // Right shape, commuting pair (XX vs YY).
            ["XX", "YY", "ZI", "IZ"]
                .iter()
                .map(|s| s.parse().unwrap())
                .collect(),
        ];
        for bad in bad_hints {
            let config = DescentConfig {
                phase_hint: Some(bad.clone()),
                bk_phase_hint: true,
                ..DescentConfig::default()
            };
            let outcome = solve_optimal(&problem, &config);
            assert!(outcome.hint_rejected, "hint {bad:?} must be rejected");
            assert_eq!(outcome.weight(), Some(6), "BK fallback still certifies");
            assert!(outcome.optimal_proved);
        }
        // No hint at all: nothing to reject.
        let outcome = solve_optimal(&problem, &DescentConfig::default());
        assert!(!outcome.hint_rejected);
    }

    #[test]
    fn hamiltonian_dependent_descent() {
        // Two modes, structure = {M₀M₁M₂M₃, M₀M₁}: optimum is 1 + 1 = 2
        // … prove whatever the optimum is, and validate it beats BK.
        let monomials = vec![
            MajoranaMonomial::from_sorted(vec![0, 1, 2, 3]),
            MajoranaMonomial::from_sorted(vec![0, 1]),
        ];
        let problem = EncodingProblem::full_sat(2, Objective::HamiltonianWeight(monomials));
        let bk_bound = bravyi_kitaev_bound(&problem);
        let outcome = solve_optimal(&problem, &DescentConfig::default());
        let w = outcome.weight().expect("solvable");
        assert!(outcome.optimal_proved);
        assert!(w <= bk_bound, "optimal {w} must not exceed BK {bk_bound}");
        assert!(w >= 2, "two non-identity products weigh ≥ 2");
    }
}

//! SAT variable layout for encoding problems.
//!
//! The unknowns are `2N` Majorana Pauli strings on `N` qubits. Each site
//! holds one Pauli operator encoded by two Boolean variables (paper Eq. 7):
//!
//! ```text
//! E(I) = (0,0)   E(X) = (0,1)   E(Y) = (1,0)   E(Z) = (1,1)
//! ```
//!
//! Variable indices `0 .. 4N²` are reserved for these primary variables in
//! a fixed order; Tseitin auxiliaries come after.

use pauli::{encoding::op_from_bits, PauliString};
use sat::{Model, Var};

/// Index mapping from (string, qubit, bit) to SAT variables.
///
/// # Example
///
/// ```
/// use fermihedral::VarLayout;
///
/// let layout = VarLayout::new(3);
/// assert_eq!(layout.num_primary_vars(), 36); // 2N·N·2 = 4N²
/// assert_ne!(layout.b1(0, 0), layout.b2(0, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarLayout {
    num_modes: usize,
}

impl VarLayout {
    /// Layout for an `N`-mode problem.
    ///
    /// # Panics
    ///
    /// Panics if `num_modes == 0`.
    pub fn new(num_modes: usize) -> VarLayout {
        assert!(num_modes > 0, "need at least one mode");
        VarLayout { num_modes }
    }

    /// Number of modes `N`.
    pub fn num_modes(&self) -> usize {
        self.num_modes
    }

    /// Number of Majorana strings (`2N`).
    pub fn num_strings(&self) -> usize {
        2 * self.num_modes
    }

    /// Number of primary variables (`4N²`).
    pub fn num_primary_vars(&self) -> usize {
        self.num_strings() * self.num_modes * 2
    }

    fn base(&self, string: usize, qubit: usize) -> usize {
        debug_assert!(string < self.num_strings(), "string index out of range");
        debug_assert!(qubit < self.num_modes, "qubit index out of range");
        (string * self.num_modes + qubit) * 2
    }

    /// First encoding bit `b1` of `(string, qubit)`.
    pub fn b1(&self, string: usize, qubit: usize) -> Var {
        Var::new(self.base(string, qubit))
    }

    /// Second encoding bit `b2` of `(string, qubit)`.
    pub fn b2(&self, string: usize, qubit: usize) -> Var {
        Var::new(self.base(string, qubit) + 1)
    }

    /// Decodes one Majorana string from a model.
    pub fn decode_string(&self, model: &Model, string: usize) -> PauliString {
        let mut s = PauliString::identity(self.num_modes);
        for q in 0..self.num_modes {
            let b1 = model.value(self.b1(string, q));
            let b2 = model.value(self.b2(string, q));
            s.set(q, op_from_bits(b1, b2));
        }
        s
    }

    /// Decodes all `2N` Majorana strings from a model.
    pub fn decode_all(&self, model: &Model) -> Vec<PauliString> {
        (0..self.num_strings())
            .map(|s| self.decode_string(model, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::{Cnf, SolveResult, Solver};

    #[test]
    fn variables_are_disjoint_and_dense() {
        let layout = VarLayout::new(3);
        let mut seen = std::collections::BTreeSet::new();
        for s in 0..6 {
            for q in 0..3 {
                assert!(seen.insert(layout.b1(s, q).index()));
                assert!(seen.insert(layout.b2(s, q).index()));
            }
        }
        assert_eq!(seen.len(), layout.num_primary_vars());
        assert_eq!(*seen.iter().max().unwrap(), layout.num_primary_vars() - 1);
    }

    #[test]
    fn decode_round_trips_paper_encoding() {
        // Force a known assignment via unit clauses and decode.
        let layout = VarLayout::new(2);
        let mut cnf = Cnf::new();
        cnf.new_vars(layout.num_primary_vars());
        // String 0 = "ZX" (q0 = X = (0,1), q1 = Z = (1,1)).
        cnf.add_clause([layout.b1(0, 0).negative()]);
        cnf.add_clause([layout.b2(0, 0).positive()]);
        cnf.add_clause([layout.b1(0, 1).positive()]);
        cnf.add_clause([layout.b2(0, 1).positive()]);
        // Remaining strings: all identity (force zeros).
        for s in 1..4 {
            for q in 0..2 {
                cnf.add_clause([layout.b1(s, q).negative()]);
                cnf.add_clause([layout.b2(s, q).negative()]);
            }
        }
        let SolveResult::Sat(model) = Solver::from_cnf(&cnf).solve() else {
            panic!()
        };
        assert_eq!(layout.decode_string(&model, 0).to_string(), "ZX");
        assert!(layout.decode_string(&model, 1).is_identity());
        assert_eq!(layout.decode_all(&model).len(), 4);
    }
}

//! Constraint generation: Fermion-to-qubit encoding as SAT.
//!
//! Implements Sections 3.3–3.7 of the paper:
//!
//! * **Anticommutativity** — for every string pair, the per-qubit
//!   anticommutativity predicates must XOR to 1. Per qubit the predicate is
//!   `(b1·b2′) ⊕ (b2·b1′)` (two AND gates and one XOR — the closed form of
//!   the paper's Eq. 9 truth table).
//! * **Algebraic independence** — for every non-empty subset of the `2N`
//!   strings, the XOR of their bit-sequence forms must not vanish. Subsets
//!   are enumerated depth-first so XOR prefixes are shared, giving the
//!   `≈ 2N·2^{2N}` auxiliary variables the paper reports in Table 3.
//! * **Vacuum state** — each Majorana pair needs an index holding an
//!   `(X, Y)` operator pair (Section 3.5).
//! * **Weight objective** — per-site weight literals (`b1 ∨ b2`) feed a
//!   totalizer ([`sat::Totalizer`]); Hamiltonian-dependent weight instead
//!   counts the sites of every Majorana-monomial product via XOR networks
//!   (Section 3.7).

use crate::layout::VarLayout;
use encodings::weight::structure_weight;
use fermion::MajoranaMonomial;
use pauli::{PauliString, PhasedString};
use sat::{Cnf, Lit, Model, Solver, Totalizer};

/// Hard cap on modes when algebraic-independence clauses are enabled: the
/// subset lattice has `2^{2N}` elements (the paper also stops at 8,
/// Table 3).
const MAX_FULL_SAT_MODES: usize = 8;

/// The optimization objective (paper Section 3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Objective {
    /// Minimize the summed Pauli weight of the 2N Majorana strings
    /// (Hamiltonian-independent, Section 3.6).
    MajoranaWeight,
    /// Minimize the summed Pauli weight over a target Hamiltonian's
    /// de-duplicated Majorana monomials (Hamiltonian-dependent,
    /// Section 3.7).
    HamiltonianWeight(Vec<MajoranaMonomial>),
}

/// Declarative description of an encoding-search problem.
///
/// # Example
///
/// ```
/// use fermihedral::{EncodingProblem, Objective};
///
/// let problem = EncodingProblem::new(3, Objective::MajoranaWeight)
///     .with_algebraic_independence(true);
/// let instance = problem.build();
/// let stats = instance.stats();
/// assert!(stats.num_clauses > 0);
/// assert_eq!(stats.num_modes, 3);
/// ```
#[derive(Debug, Clone)]
pub struct EncodingProblem {
    num_modes: usize,
    objective: Objective,
    algebraic_independence: bool,
    vacuum: bool,
}

impl EncodingProblem {
    /// A problem with the paper's default optional constraints: vacuum
    /// condition on, algebraic-independence clauses off (the Section 4.1
    /// configuration, safe for every `N` with failure probability `4^{-N}`).
    pub fn new(num_modes: usize, objective: Objective) -> EncodingProblem {
        assert!(num_modes > 0, "need at least one mode");
        EncodingProblem {
            num_modes,
            objective,
            algebraic_independence: false,
            vacuum: true,
        }
    }

    /// The paper's **Full SAT** configuration: every constraint enabled.
    pub fn full_sat(num_modes: usize, objective: Objective) -> EncodingProblem {
        EncodingProblem::new(num_modes, objective).with_algebraic_independence(true)
    }

    /// Enables/disables the exponential algebraic-independence clause set.
    ///
    /// # Panics (deferred to [`build`](Self::build))
    ///
    /// Building panics when enabled with more than 8 modes.
    pub fn with_algebraic_independence(mut self, on: bool) -> EncodingProblem {
        self.algebraic_independence = on;
        self
    }

    /// Enables/disables the vacuum-state XY-pair constraint.
    pub fn with_vacuum_condition(mut self, on: bool) -> EncodingProblem {
        self.vacuum = on;
        self
    }

    /// Number of modes.
    pub fn num_modes(&self) -> usize {
        self.num_modes
    }

    /// The objective.
    pub fn objective(&self) -> &Objective {
        &self.objective
    }

    /// Whether algebraic-independence clauses are enabled.
    pub fn has_algebraic_independence(&self) -> bool {
        self.algebraic_independence
    }

    /// Whether the vacuum condition is enabled.
    pub fn has_vacuum_condition(&self) -> bool {
        self.vacuum
    }

    /// Generates the CNF instance.
    ///
    /// # Panics
    ///
    /// Panics if algebraic independence is enabled with more than
    /// 8 modes (`2^{2N}` subsets — the paper's own cut-off in Table 3).
    pub fn build(&self) -> EncodingInstance {
        let n = self.num_modes;
        if self.algebraic_independence {
            assert!(
                n <= MAX_FULL_SAT_MODES,
                "algebraic independence needs 2^{{2N}} clauses; {n} modes exceeds the \
                 {MAX_FULL_SAT_MODES}-mode cap (use with_algebraic_independence(false))"
            );
        }
        let layout = VarLayout::new(n);
        let mut cnf = Cnf::new();
        cnf.new_vars(layout.num_primary_vars());

        add_anticommutativity(&mut cnf, &layout);
        if self.algebraic_independence {
            add_algebraic_independence(&mut cnf, &layout);
        }
        if self.vacuum {
            add_vacuum_condition(&mut cnf, &layout);
        }
        let weight_inputs = match &self.objective {
            Objective::MajoranaWeight => majorana_weight_literals(&mut cnf, &layout),
            Objective::HamiltonianWeight(monomials) => {
                hamiltonian_weight_literals(&mut cnf, &layout, monomials)
            }
        };
        let totalizer = Totalizer::new(&mut cnf, &weight_inputs);
        EncodingInstance {
            problem: self.clone(),
            layout,
            cnf,
            totalizer,
        }
    }
}

/// A generated CNF instance with its weight counter.
#[derive(Debug, Clone)]
pub struct EncodingInstance {
    problem: EncodingProblem,
    layout: VarLayout,
    cnf: Cnf,
    totalizer: Totalizer,
}

impl EncodingInstance {
    /// The problem this instance encodes.
    pub fn problem(&self) -> &EncodingProblem {
        &self.problem
    }

    /// The variable layout.
    pub fn layout(&self) -> &VarLayout {
        &self.layout
    }

    /// The generated CNF.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// A fresh solver loaded with the instance.
    pub fn solver(&self) -> Solver {
        Solver::from_cnf(&self.cnf)
    }

    /// Maximum representable weight (number of totalizer inputs).
    pub fn weight_upper_bound(&self) -> usize {
        self.totalizer.len()
    }

    /// Assumption literal enforcing `objective weight < w` (Algorithm 1's
    /// bound). `None` when the bound is trivially true.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn assume_weight_less_than(&self, w: usize) -> Option<Lit> {
        self.totalizer.less_than(w)
    }

    /// Decodes a model into the `2N` Majorana strings.
    pub fn decode(&self, model: &Model) -> Vec<PauliString> {
        self.layout.decode_all(model)
    }

    /// Evaluates the objective weight of a decoded string set.
    pub fn measure_weight(&self, strings: &[PauliString]) -> usize {
        match &self.problem.objective {
            Objective::MajoranaWeight => strings.iter().map(PauliString::weight).sum(),
            Objective::HamiltonianWeight(monomials) => {
                let phased: Vec<PhasedString> =
                    strings.iter().cloned().map(PhasedString::from).collect();
                structure_weight(&phased, monomials)
            }
        }
    }

    /// Writes the instance in DIMACS CNF format, so it can be cross-checked
    /// with external solvers (Kissat/CaDiCaL — the paper's toolchain).
    ///
    /// Note that the weight bound is *not* part of the formula (Algorithm 1
    /// passes it as an assumption); append a unit clause on
    /// [`assume_weight_less_than`](Self::assume_weight_less_than)'s literal
    /// to fix a bound externally.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_dimacs(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        sat::dimacs::write(&self.cnf, w)
    }

    /// Size statistics (paper Table 3).
    pub fn stats(&self) -> InstanceStats {
        InstanceStats {
            num_modes: self.problem.num_modes,
            algebraic_independence: self.problem.algebraic_independence,
            num_vars: self.cnf.num_vars(),
            num_clauses: self.cnf.num_clauses(),
            num_literals: self.cnf.num_literals(),
            avg_clause_len: self.cnf.avg_clause_len(),
        }
    }
}

/// Size statistics of a generated instance (the columns of Table 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceStats {
    /// Number of Fermionic modes `N`.
    pub num_modes: usize,
    /// Whether the exponential constraint set was included.
    pub algebraic_independence: bool,
    /// Total variables (primary + Tseitin auxiliaries).
    pub num_vars: usize,
    /// Total clauses.
    pub num_clauses: usize,
    /// Total literal occurrences.
    pub num_literals: usize,
    /// Mean clause length.
    pub avg_clause_len: f64,
}

// ---------------------------------------------------------------------------
// Constraint generators
// ---------------------------------------------------------------------------

/// Anticommutativity (Section 3.3): for each pair of strings the per-qubit
/// predicates XOR to 1.
fn add_anticommutativity(cnf: &mut Cnf, layout: &VarLayout) {
    let n = layout.num_modes();
    for s in 0..layout.num_strings() {
        for t in (s + 1)..layout.num_strings() {
            let mut site_lits = Vec::with_capacity(n);
            for q in 0..n {
                let a1 = cnf.and_gate(layout.b1(s, q).positive(), layout.b2(t, q).positive());
                let a2 = cnf.and_gate(layout.b2(s, q).positive(), layout.b1(t, q).positive());
                site_lits.push(cnf.xor_gate(a1, a2));
            }
            cnf.add_xor_constraint(&site_lits, true);
        }
    }
}

/// Algebraic independence (Section 3.4): every non-empty subset's
/// bit-sequence XOR must be non-zero. Depth-first over the subset lattice,
/// sharing XOR prefixes between sibling subsets.
fn add_algebraic_independence(cnf: &mut Cnf, layout: &VarLayout) {
    let n = layout.num_modes();
    let num_bits = 2 * n;
    // bit j of string s: (qubit j/2, b1/b2 by parity).
    let bit_lit = |layout: &VarLayout, s: usize, j: usize| -> Lit {
        let q = j / 2;
        if j.is_multiple_of(2) {
            layout.b1(s, q).positive()
        } else {
            layout.b2(s, q).positive()
        }
    };

    // Iterative DFS carrying the prefix XOR literals of the included set.
    fn walk(
        cnf: &mut Cnf,
        layout: &VarLayout,
        bit_lit: &dyn Fn(&VarLayout, usize, usize) -> Lit,
        s: usize,
        prefix: Option<&Vec<Lit>>,
        num_bits: usize,
    ) {
        if s == layout.num_strings() {
            if let Some(bits) = prefix {
                // Non-empty subset: at least one product bit differs from I.
                cnf.add_clause(bits.iter().copied());
            }
            return;
        }
        // Exclude string s.
        walk(cnf, layout, bit_lit, s + 1, prefix, num_bits);
        // Include string s: extend the prefix XOR bit-wise.
        let next: Vec<Lit> = match prefix {
            None => (0..num_bits).map(|j| bit_lit(layout, s, j)).collect(),
            Some(bits) => (0..num_bits)
                .map(|j| cnf.xor_gate(bits[j], bit_lit(layout, s, j)))
                .collect(),
        };
        walk(cnf, layout, bit_lit, s + 1, Some(&next), num_bits);
    }
    walk(cnf, layout, &bit_lit, 0, None, num_bits);
}

/// Vacuum condition (Section 3.5): each pair `(M_{2j}, M_{2j+1})` has an
/// index with an `(X, Y)` operator pair. `X = (0,1)`, `Y = (1,0)`.
fn add_vacuum_condition(cnf: &mut Cnf, layout: &VarLayout) {
    let n = layout.num_modes();
    for j in 0..n {
        let even = 2 * j;
        let odd = 2 * j + 1;
        let mut site_gates = Vec::with_capacity(n);
        for q in 0..n {
            let lits = [
                layout.b1(even, q).negative(),
                layout.b2(even, q).positive(),
                layout.b1(odd, q).positive(),
                layout.b2(odd, q).negative(),
            ];
            site_gates.push(cnf.and_many(&lits).expect("non-empty"));
        }
        cnf.add_clause(site_gates);
    }
}

/// Per-site weight literals `w(s,q) ↔ b1 ∨ b2` for the
/// Hamiltonian-independent objective (Section 3.6).
fn majorana_weight_literals(cnf: &mut Cnf, layout: &VarLayout) -> Vec<Lit> {
    let mut out = Vec::with_capacity(layout.num_strings() * layout.num_modes());
    for s in 0..layout.num_strings() {
        for q in 0..layout.num_modes() {
            out.push(cnf.or_gate(layout.b1(s, q).positive(), layout.b2(s, q).positive()));
        }
    }
    out
}

/// Weight literals for the Hamiltonian-dependent objective (Section 3.7):
/// for each de-duplicated monomial, the product string's per-qubit weight
/// (`⊕b1 ∨ ⊕b2` over the member strings).
fn hamiltonian_weight_literals(
    cnf: &mut Cnf,
    layout: &VarLayout,
    monomials: &[MajoranaMonomial],
) -> Vec<Lit> {
    let mut unique: std::collections::BTreeSet<&MajoranaMonomial> = Default::default();
    let mut out = Vec::new();
    for m in monomials {
        if m.is_identity() || !unique.insert(m) {
            continue;
        }
        for idx in m.indices() {
            assert!(
                (*idx as usize) < layout.num_strings(),
                "monomial index {idx} out of range for {} modes",
                layout.num_modes()
            );
        }
        for q in 0..layout.num_modes() {
            let b1s: Vec<Lit> = m
                .indices()
                .iter()
                .map(|&s| layout.b1(s as usize, q).positive())
                .collect();
            let b2s: Vec<Lit> = m
                .indices()
                .iter()
                .map(|&s| layout.b2(s as usize, q).positive())
                .collect();
            let x1 = cnf.xor_chain(&b1s).expect("non-empty monomial");
            let x2 = cnf.xor_chain(&b2s).expect("non-empty monomial");
            out.push(cnf.or_gate(x1, x2));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use encodings::validate::validate_strings;
    use sat::SolveResult;

    fn solve_instance(
        instance: &EncodingInstance,
        bound: Option<usize>,
    ) -> Option<Vec<PauliString>> {
        let mut solver = instance.solver();
        let assumptions: Vec<Lit> = bound
            .and_then(|w| instance.assume_weight_less_than(w))
            .into_iter()
            .collect();
        match solver.solve_with_assumptions(&assumptions) {
            SolveResult::Sat(m) => Some(instance.decode(&m)),
            SolveResult::Unsat => None,
            SolveResult::Unknown | SolveResult::Interrupted => panic!("no budget configured"),
        }
    }

    #[test]
    fn single_mode_solution_is_valid() {
        let instance = EncodingProblem::full_sat(1, Objective::MajoranaWeight).build();
        let strings = solve_instance(&instance, None).expect("N=1 is satisfiable");
        let phased: Vec<PhasedString> = strings.iter().cloned().map(PhasedString::from).collect();
        let report = validate_strings(&phased);
        assert!(report.is_valid(), "{report:?} for {strings:?}");
        assert!(report.xy_pair_condition);
        // Optimal weight for one mode is 2 (e.g. X and Y).
        assert!(
            solve_instance(&instance, Some(2)).is_none(),
            "weight < 2 impossible"
        );
        let at_two = solve_instance(&instance, Some(3)).expect("weight ≤ 2 achievable");
        assert_eq!(instance.measure_weight(&at_two), 2);
    }

    #[test]
    fn two_modes_full_sat_solutions_are_valid() {
        let instance = EncodingProblem::full_sat(2, Objective::MajoranaWeight).build();
        for _ in 0..1 {
            let strings = solve_instance(&instance, None).expect("satisfiable");
            let phased: Vec<PhasedString> =
                strings.iter().cloned().map(PhasedString::from).collect();
            let report = validate_strings(&phased);
            assert!(report.anticommuting, "{strings:?}");
            assert!(report.algebraically_independent, "{strings:?}");
            assert!(report.xy_pair_condition, "{strings:?}");
        }
    }

    #[test]
    fn two_modes_optimum_is_six() {
        let instance = EncodingProblem::full_sat(2, Objective::MajoranaWeight).build();
        // Weight ≤ 5 must be UNSAT; weight ≤ 6 SAT (JW achieves 6).
        assert!(solve_instance(&instance, Some(6)).is_none());
        let s = solve_instance(&instance, Some(7)).expect("JW weight must be feasible");
        assert_eq!(instance.measure_weight(&s), 6);
    }

    #[test]
    fn without_algebraic_independence_may_still_validate() {
        // At N=3 the failure probability is 1/64; check the solver output
        // explicitly and accept either, but the anticommutativity and
        // vacuum conditions must always hold.
        let instance = EncodingProblem::new(3, Objective::MajoranaWeight).build();
        let strings = solve_instance(&instance, None).expect("satisfiable");
        let phased: Vec<PhasedString> = strings.iter().cloned().map(PhasedString::from).collect();
        let report = validate_strings(&phased);
        assert!(report.anticommuting);
        assert!(report.xy_pair_condition);
    }

    #[test]
    fn hamiltonian_objective_counts_product_weight() {
        // Single monomial M₀M₁ on one mode: the optimal product weight is 1
        // (e.g. X·Y = Z on the same qubit).
        let monomials = vec![MajoranaMonomial::from_sorted(vec![0, 1])];
        let instance =
            EncodingProblem::full_sat(1, Objective::HamiltonianWeight(monomials)).build();
        assert!(
            solve_instance(&instance, Some(1)).is_none(),
            "weight 0 impossible"
        );
        let s = solve_instance(&instance, Some(2)).expect("weight 1 achievable");
        assert_eq!(instance.measure_weight(&s), 1);
    }

    #[test]
    fn stats_scale_with_constraints() {
        let with_alg = EncodingProblem::full_sat(3, Objective::MajoranaWeight)
            .build()
            .stats();
        let without = EncodingProblem::new(3, Objective::MajoranaWeight)
            .build()
            .stats();
        assert!(with_alg.num_vars > without.num_vars);
        assert!(with_alg.num_clauses > without.num_clauses);
        // Paper Table 3 magnitude check (constructions differ by small
        // constants): N=3 w/ alg ≈ hundreds of vars, thousands of clauses.
        assert!(with_alg.num_clauses > 1000);
        assert!(without.num_clauses < 2500);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn full_sat_mode_cap() {
        let _ = EncodingProblem::full_sat(9, Objective::MajoranaWeight).build();
    }

    #[test]
    fn dimacs_round_trip_preserves_satisfiability() {
        let instance = EncodingProblem::full_sat(2, Objective::MajoranaWeight).build();
        let mut buf = Vec::new();
        instance.write_dimacs(&mut buf).unwrap();
        let parsed = sat::dimacs::parse(buf.as_slice()).unwrap();
        assert_eq!(parsed.num_vars(), instance.cnf().num_vars());
        assert_eq!(parsed.num_clauses(), instance.cnf().num_clauses());
        // The parsed instance solves to a model that decodes to a valid
        // encoding under the original layout.
        let result = sat::Solver::from_cnf(&parsed).solve();
        let model = result.model().expect("encoding instances are satisfiable");
        let strings = instance.decode(model);
        let phased: Vec<PhasedString> = strings.iter().cloned().map(PhasedString::from).collect();
        assert!(validate_strings(&phased).is_valid());
    }

    #[test]
    fn vacuum_condition_can_be_disabled() {
        let base = EncodingProblem::new(2, Objective::MajoranaWeight)
            .with_vacuum_condition(false)
            .build();
        let with = EncodingProblem::new(2, Objective::MajoranaWeight).build();
        assert!(base.stats().num_clauses < with.stats().num_clauses);
    }
}

//! Enumerating distinct encodings with blocking clauses.
//!
//! The paper's Figure 4 samples "the first 50 optimal encodings" at each
//! size to study how often subsets of Majorana operators form accidental
//! algebraic dependencies. Enumeration is the textbook loop: solve, record
//! the model, add a clause forbidding exactly that assignment of the
//! primary variables, repeat.

use crate::instance::EncodingInstance;
use pauli::PauliString;
use sat::{Lit, SolveResult};
use std::time::Duration;

/// Budgets for [`enumerate_encodings`].
#[derive(Debug, Clone)]
pub struct EnumerateConfig {
    /// Stop after this many distinct solutions.
    pub max_solutions: usize,
    /// Only accept encodings with objective weight < bound (`None`: any).
    pub weight_bound: Option<usize>,
    /// Per-call conflict budget.
    pub conflict_budget: Option<u64>,
    /// Per-call wall-clock budget.
    pub solve_timeout: Option<Duration>,
}

impl Default for EnumerateConfig {
    fn default() -> Self {
        EnumerateConfig {
            max_solutions: 50,
            weight_bound: None,
            conflict_budget: None,
            solve_timeout: None,
        }
    }
}

/// Enumerates distinct solutions of an encoding instance.
///
/// Distinctness is at the level of the primary variables, i.e. the actual
/// `2N` Pauli strings; two solutions differing only in auxiliary variables
/// are the same encoding.
///
/// # Example
///
/// ```
/// use fermihedral::{EncodingProblem, Objective};
/// use fermihedral::enumerate::{enumerate_encodings, EnumerateConfig};
///
/// let problem = EncodingProblem::full_sat(1, Objective::MajoranaWeight);
/// let config = EnumerateConfig { max_solutions: 100, weight_bound: Some(3), ..Default::default() };
/// let solutions = enumerate_encodings(&problem.build(), &config);
/// // Weight-2 single-mode encodings: ordered pairs of distinct
/// // anticommuting single-qubit operators with an (X,Y) vacuum pair = (X,Y)
/// // itself… enumerate and check they are all distinct and weight-2.
/// assert!(!solutions.is_empty());
/// for s in &solutions {
///     assert_eq!(s.iter().map(|p| p.weight()).sum::<usize>(), 2);
/// }
/// ```
pub fn enumerate_encodings(
    instance: &EncodingInstance,
    config: &EnumerateConfig,
) -> Vec<Vec<PauliString>> {
    let mut solver = instance.solver();
    solver.set_conflict_budget(config.conflict_budget);
    solver.set_timeout(config.solve_timeout);
    // Warm-start like the descent does: phase-save the Bravyi-Kitaev
    // assignment and front-load primary-variable decisions, so the first
    // model is found quickly even at 10+ modes (subsequent models inherit
    // the previous model's phases, walking the solution cluster).
    {
        use encodings::{Encoding, LinearEncoding};
        let layout = instance.layout();
        let bk = LinearEncoding::bravyi_kitaev(layout.num_modes()).majoranas();
        for (s, string) in bk.iter().enumerate() {
            for q in 0..layout.num_modes() {
                let (b1, b2) = pauli::encoding::op_to_bits(string.string().get(q));
                solver.set_phase(layout.b1(s, q), b1);
                solver.set_phase(layout.b2(s, q), b2);
                solver.boost_activity(layout.b1(s, q), 1.0);
                solver.boost_activity(layout.b2(s, q), 1.0);
            }
        }
    }

    let assumptions: Vec<Lit> = config
        .weight_bound
        .and_then(|w| instance.assume_weight_less_than(w))
        .into_iter()
        .collect();

    let layout = *instance.layout();
    let mut out = Vec::new();
    while out.len() < config.max_solutions {
        match solver.solve_with_assumptions(&assumptions) {
            SolveResult::Sat(model) => {
                let strings = layout.decode_all(&model);
                // Block this exact primary assignment.
                let mut blocking = Vec::with_capacity(layout.num_primary_vars());
                for s in 0..layout.num_strings() {
                    for q in 0..layout.num_modes() {
                        for var in [layout.b1(s, q), layout.b2(s, q)] {
                            blocking.push(var.lit(!model.value(var)));
                        }
                    }
                }
                solver.add_clause(blocking);
                out.push(strings);
            }
            SolveResult::Unsat | SolveResult::Unknown | SolveResult::Interrupted => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{EncodingProblem, Objective};
    use encodings::validate::validate_strings;
    use pauli::PhasedString;
    use std::collections::BTreeSet;

    #[test]
    fn solutions_are_distinct_and_valid() {
        let instance = EncodingProblem::full_sat(2, Objective::MajoranaWeight).build();
        let config = EnumerateConfig {
            max_solutions: 25,
            weight_bound: Some(7), // optimal weight 6
            ..Default::default()
        };
        let sols = enumerate_encodings(&instance, &config);
        assert!(!sols.is_empty());
        let set: BTreeSet<_> = sols.iter().collect();
        assert_eq!(set.len(), sols.len(), "duplicates returned");
        for s in &sols {
            let phased: Vec<PhasedString> = s.iter().cloned().map(PhasedString::from).collect();
            let report = validate_strings(&phased);
            assert!(report.is_valid(), "{s:?}");
            assert_eq!(instance.measure_weight(s), 6);
        }
    }

    #[test]
    fn exhausts_finite_solution_space() {
        // One mode at optimal weight 2: finitely many encodings; ask for
        // more than exist and verify termination.
        let instance = EncodingProblem::full_sat(1, Objective::MajoranaWeight).build();
        let config = EnumerateConfig {
            max_solutions: 10_000,
            weight_bound: Some(3),
            ..Default::default()
        };
        let sols = enumerate_encodings(&instance, &config);
        // Pairs of distinct anticommuting single-qubit Paulis with an XY
        // index: (X,Y) only under the vacuum constraint.
        assert_eq!(sols.len(), 1, "{sols:?}");
        assert_eq!(sols[0][0].to_string(), "X");
        assert_eq!(sols[0][1].to_string(), "Y");
    }

    #[test]
    fn max_solutions_respected() {
        let instance = EncodingProblem::new(2, Objective::MajoranaWeight).build();
        let config = EnumerateConfig {
            max_solutions: 3,
            ..Default::default()
        };
        let sols = enumerate_encodings(&instance, &config);
        assert_eq!(sols.len(), 3);
    }
}

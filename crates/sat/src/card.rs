//! Cardinality constraints: totalizer and sequential-counter encodings.
//!
//! Fermihedral's objective — minimize total Pauli weight — becomes a
//! cardinality bound `Σ weight-literals < w` (paper Section 3.6). The
//! descent loop of Algorithm 1 repeatedly tightens `w`, so the encoding must
//! support *incremental* bounds: the [`Totalizer`] exposes sorted unary
//! output literals, and a bound is a single assumption literal, letting one
//! solver instance (and its learnt clauses) serve the whole descent.

use crate::cnf::Cnf;
use crate::types::Lit;

/// Totalizer cardinality network [Bailleux & Boutaouche 2003].
///
/// Builds, over `n` input literals, a balanced tree of unary counters with
/// output literals `o_1 … o_n` such that `o_k ⟺ (Σ inputs ≥ k)` (both
/// implication directions are encoded, plus unary ordering clauses).
///
/// # Example
///
/// ```
/// use sat::{Cnf, Solver, SolveResult, Totalizer};
///
/// let mut cnf = Cnf::new();
/// let xs: Vec<_> = (0..5).map(|_| cnf.new_var().positive()).collect();
/// let tot = Totalizer::new(&mut cnf, &xs);
///
/// // Force "at most 2 of 5": assume the negation of output o_3.
/// let bound = tot.at_most(2).unwrap();
/// let mut solver = Solver::from_cnf(&cnf);
/// let SolveResult::Sat(m) = solver.solve_with_assumptions(&[bound]) else {
///     panic!();
/// };
/// let ones = xs.iter().filter(|l| m.lit_value(**l)).count();
/// assert!(ones <= 2);
/// ```
#[derive(Debug, Clone)]
pub struct Totalizer {
    outputs: Vec<Lit>,
}

impl Totalizer {
    /// Encodes the counting network for `inputs` into `cnf`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn new(cnf: &mut Cnf, inputs: &[Lit]) -> Totalizer {
        assert!(!inputs.is_empty(), "totalizer over no inputs");
        let outputs = build_node(cnf, inputs);
        // Unary ordering: o_{k+1} → o_k.
        for w in outputs.windows(2) {
            cnf.add_implies(w[1], w[0]);
        }
        Totalizer { outputs }
    }

    /// Number of inputs counted.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// True when the totalizer counts zero inputs (never constructed).
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// The sorted unary outputs; `outputs()[k]` is true iff at least `k+1`
    /// inputs are true.
    pub fn outputs(&self) -> &[Lit] {
        &self.outputs
    }

    /// Assumption literal enforcing `Σ inputs ≥ k`.
    ///
    /// Returns `None` when `k == 0` (trivially true) or `k > n` (cannot be
    /// expressed — it is unsatisfiable; callers check against
    /// [`len`](Self::len)).
    pub fn at_least(&self, k: usize) -> Option<Lit> {
        if k == 0 || k > self.outputs.len() {
            None
        } else {
            Some(self.outputs[k - 1])
        }
    }

    /// Assumption literal enforcing `Σ inputs ≤ k`.
    ///
    /// Returns `None` when `k ≥ n` (trivially true).
    pub fn at_most(&self, k: usize) -> Option<Lit> {
        if k >= self.outputs.len() {
            None
        } else {
            Some(!self.outputs[k])
        }
    }

    /// Assumption literal enforcing `Σ inputs < k` — the exact form used by
    /// Algorithm 1's weight constraint. Equivalent to `at_most(k-1)`.
    ///
    /// Returns `None` when `k > n` (trivially true); for `k == 0` the
    /// formula is made unsatisfiable by no assumption, so the caller gets
    /// the always-false `at_most(usize::MAX)`… instead we document:
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (a sum of literals cannot be negative).
    pub fn less_than(&self, k: usize) -> Option<Lit> {
        assert!(k > 0, "sum < 0 is always false");
        self.at_most(k - 1)
    }
}

/// Recursively builds the totalizer tree, returning the node's unary
/// output literals (length = number of leaves beneath).
fn build_node(cnf: &mut Cnf, inputs: &[Lit]) -> Vec<Lit> {
    if inputs.len() == 1 {
        return vec![inputs[0]];
    }
    let mid = inputs.len() / 2;
    let left = build_node(cnf, &inputs[..mid]);
    let right = build_node(cnf, &inputs[mid..]);
    merge(cnf, &left, &right)
}

/// Merges two unary counters into one of combined width.
fn merge(cnf: &mut Cnf, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let m = a.len() + b.len();
    let outputs: Vec<Lit> = (0..m).map(|_| cnf.new_var().positive()).collect();

    // Direction 1 (inputs → outputs): A_i ∧ B_j → O_{i+j}.
    for i in 0..=a.len() {
        for j in 0..=b.len() {
            if i + j == 0 {
                continue;
            }
            let mut clause = Vec::with_capacity(3);
            if i > 0 {
                clause.push(!a[i - 1]);
            }
            if j > 0 {
                clause.push(!b[j - 1]);
            }
            clause.push(outputs[i + j - 1]);
            cnf.add_clause(clause);
        }
    }
    // Direction 2 (outputs → inputs): O_{i+j+1} → A_{i+1} ∨ B_{j+1}.
    for i in 0..=a.len() {
        for j in 0..=b.len() {
            if i == a.len() && j == b.len() {
                continue;
            }
            let mut clause = Vec::with_capacity(3);
            if i < a.len() {
                clause.push(a[i]);
            }
            if j < b.len() {
                clause.push(b[j]);
            }
            clause.push(!outputs[i + j]);
            cnf.add_clause(clause);
        }
    }
    outputs
}

/// Directly adds clauses enforcing `Σ inputs ≤ k` using the sequential
/// counter encoding [Sinz 2005]. Not incremental — used as an independent
/// cross-check of the totalizer and for one-shot bounds.
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn add_at_most_seq(cnf: &mut Cnf, inputs: &[Lit], k: usize) {
    assert!(!inputs.is_empty(), "cardinality over no inputs");
    if k >= inputs.len() {
        return; // trivially satisfied
    }
    if k == 0 {
        for &l in inputs {
            cnf.add_clause([!l]);
        }
        return;
    }
    let n = inputs.len();
    // s[i][j]: among inputs[0..=i], at least j+1 are true (j < k).
    let s: Vec<Vec<Lit>> = (0..n - 1)
        .map(|_| (0..k).map(|_| cnf.new_var().positive()).collect())
        .collect();
    cnf.add_implies(inputs[0], s[0][0]);
    #[allow(clippy::needless_range_loop)] // j indexes two zipped roles
    for j in 1..k {
        cnf.add_clause([!s[0][j]]);
    }
    for i in 1..n - 1 {
        cnf.add_implies(inputs[i], s[i][0]);
        cnf.add_implies(s[i - 1][0], s[i][0]);
        for j in 1..k {
            // s[i][j] ← s[i-1][j] ∨ (x_i ∧ s[i-1][j-1])
            cnf.add_implies(s[i - 1][j], s[i][j]);
            cnf.add_clause([!inputs[i], !s[i - 1][j - 1], s[i][j]]);
        }
        // Overflow: x_i with already k true is forbidden.
        cnf.add_clause([!inputs[i], !s[i - 1][k - 1]]);
    }
    cnf.add_clause([!inputs[n - 1], !s[n - 2][k - 1]]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{SolveResult, Solver};
    use crate::types::Var;

    /// Checks by brute force that (formula restricted to input assignment)
    /// is satisfiable exactly when the predicate holds.
    fn check_bound<F: Fn(usize) -> bool>(n: usize, bound: impl Fn(&Totalizer) -> Vec<Lit>, ok: F) {
        let mut cnf = Cnf::new();
        let vars: Vec<Var> = cnf.new_vars(n);
        let inputs: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        let tot = Totalizer::new(&mut cnf, &inputs);
        let assumptions = bound(&tot);
        for mask in 0u32..(1 << n) {
            let mut solver = Solver::from_cnf(&cnf);
            let mut assume = assumptions.clone();
            for (i, v) in vars.iter().enumerate() {
                assume.push(v.lit(mask >> i & 1 == 1));
            }
            let sat = solver.solve_with_assumptions(&assume).is_sat();
            let ones = mask.count_ones() as usize;
            assert_eq!(sat, ok(ones), "n={n} mask={mask:b} ones={ones}");
        }
    }

    #[test]
    fn totalizer_at_most_exact() {
        for n in 1..=6usize {
            for k in 0..=n {
                check_bound(n, |t| t.at_most(k).into_iter().collect(), |ones| ones <= k);
            }
        }
    }

    #[test]
    fn totalizer_at_least_exact() {
        for n in 1..=5usize {
            for k in 0..=n {
                check_bound(n, |t| t.at_least(k).into_iter().collect(), |ones| ones >= k);
            }
        }
    }

    #[test]
    fn totalizer_window() {
        // 2 ≤ sum ≤ 3 out of 5.
        check_bound(
            5,
            |t| {
                let mut v = Vec::new();
                v.extend(t.at_least(2));
                v.extend(t.at_most(3));
                v
            },
            |ones| (2..=3).contains(&ones),
        );
    }

    #[test]
    fn less_than_is_at_most_minus_one() {
        let mut cnf = Cnf::new();
        let inputs: Vec<Lit> = cnf.new_vars(4).iter().map(|v| v.positive()).collect();
        let tot = Totalizer::new(&mut cnf, &inputs);
        assert_eq!(tot.less_than(3), tot.at_most(2));
        assert_eq!(tot.less_than(5), None);
    }

    #[test]
    #[should_panic(expected = "always false")]
    fn less_than_zero_panics() {
        let mut cnf = Cnf::new();
        let inputs: Vec<Lit> = cnf.new_vars(2).iter().map(|v| v.positive()).collect();
        let tot = Totalizer::new(&mut cnf, &inputs);
        let _ = tot.less_than(0);
    }

    #[test]
    fn sequential_counter_matches_totalizer() {
        for n in 1..=6usize {
            for k in 0..=n {
                let mut cnf = Cnf::new();
                let vars: Vec<Var> = cnf.new_vars(n);
                let inputs: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
                add_at_most_seq(&mut cnf, &inputs, k);
                for mask in 0u32..(1 << n) {
                    let mut solver = Solver::from_cnf(&cnf);
                    let assume: Vec<Lit> = vars
                        .iter()
                        .enumerate()
                        .map(|(i, v)| v.lit(mask >> i & 1 == 1))
                        .collect();
                    let sat = solver.solve_with_assumptions(&assume).is_sat();
                    assert_eq!(sat, mask.count_ones() as usize <= k, "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn incremental_descent_over_one_totalizer() {
        // Mimic Algorithm 1: a single solver instance answers a sequence of
        // shrinking bounds; with 6 free inputs, sum < k is SAT iff k ≥ 1.
        let mut cnf = Cnf::new();
        let inputs: Vec<Lit> = cnf.new_vars(6).iter().map(|v| v.positive()).collect();
        // Constrain at least 2 inputs true so descent bottoms out at 2.
        let tot = Totalizer::new(&mut cnf, &inputs);
        if let Some(l) = tot.at_least(2) {
            cnf.add_clause([l]);
        }
        let mut solver = Solver::from_cnf(&cnf);
        let mut best = None;
        let mut w = 6;
        while w > 0 {
            let assume: Vec<Lit> = tot.less_than(w).into_iter().collect();
            match solver.solve_with_assumptions(&assume) {
                SolveResult::Sat(m) => {
                    let count = inputs.iter().filter(|l| m.lit_value(**l)).count();
                    assert!(count < w);
                    best = Some(count);
                    w = count; // descend to "strictly better"
                }
                SolveResult::Unsat => break,
                SolveResult::Unknown | SolveResult::Interrupted => panic!("no budget set"),
            }
        }
        assert_eq!(best, Some(2));
    }
}

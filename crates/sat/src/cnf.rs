//! CNF formula construction with Tseitin gates.
//!
//! Fermihedral's constraints are rich Boolean circuits — XOR chains over
//! anticommutativity predicates, subset-product networks, weight counters —
//! that must land in conjunctive normal form for a CDCL solver. Directly
//! expanding XORs blows up exponentially (paper Section 3.8); this builder
//! performs the Tseitin transformation [Tseitin 1983] on the fly, creating
//! one auxiliary variable per gate and a constant number of clauses.

use crate::types::{Lit, Var};

/// A CNF formula under construction.
///
/// # Example
///
/// ```
/// use sat::{Cnf, Solver, SolveResult};
///
/// let mut cnf = Cnf::new();
/// let bits: Vec<_> = (0..4).map(|_| cnf.new_var().positive()).collect();
/// // Constrain the XOR of four bits to be odd.
/// let parity = cnf.xor_chain(&bits).unwrap();
/// cnf.add_clause([parity]);
/// let SolveResult::Sat(model) = Solver::from_cnf(&cnf).solve() else {
///     panic!("satisfiable");
/// };
/// let ones = bits.iter().filter(|l| model.lit_value(**l)).count();
/// assert_eq!(ones % 2, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    true_lit: Option<Lit>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Allocates `n` fresh variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables allocated so far.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses added so far.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Total number of literal occurrences across all clauses.
    pub fn num_literals(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// Average clause length — the paper reports #vars/#clauses ratios in
    /// Table 3; this is the companion diagnostic.
    pub fn avg_clause_len(&self) -> f64 {
        if self.clauses.is_empty() {
            0.0
        } else {
            self.num_literals() as f64 / self.num_clauses() as f64
        }
    }

    /// The clauses built so far.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Adds one clause (a disjunction of literals).
    ///
    /// An empty clause makes the formula trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().index() < self.num_vars,
                "literal {l} references unallocated variable"
            );
        }
        self.clauses.push(clause);
    }

    /// A literal constrained to be true (allocated lazily, one unit clause).
    pub fn lit_true(&mut self) -> Lit {
        if let Some(t) = self.true_lit {
            return t;
        }
        let t = self.new_var().positive();
        self.add_clause([t]);
        self.true_lit = Some(t);
        t
    }

    /// A literal constrained to be false.
    pub fn lit_false(&mut self) -> Lit {
        !self.lit_true()
    }

    /// Adds `a → b`.
    pub fn add_implies(&mut self, a: Lit, b: Lit) {
        self.add_clause([!a, b]);
    }

    /// Adds `a ↔ b`.
    pub fn add_iff(&mut self, a: Lit, b: Lit) {
        self.add_clause([!a, b]);
        self.add_clause([a, !b]);
    }

    /// Tseitin AND: returns `g` with `g ↔ a ∧ b` (3 clauses).
    pub fn and_gate(&mut self, a: Lit, b: Lit) -> Lit {
        let g = self.new_var().positive();
        self.add_clause([!g, a]);
        self.add_clause([!g, b]);
        self.add_clause([g, !a, !b]);
        g
    }

    /// Tseitin OR: returns `g` with `g ↔ a ∨ b` (3 clauses).
    pub fn or_gate(&mut self, a: Lit, b: Lit) -> Lit {
        let g = self.new_var().positive();
        self.add_clause([g, !a]);
        self.add_clause([g, !b]);
        self.add_clause([!g, a, b]);
        g
    }

    /// Tseitin XOR: returns `g` with `g ↔ a ⊕ b` (4 clauses).
    pub fn xor_gate(&mut self, a: Lit, b: Lit) -> Lit {
        let g = self.new_var().positive();
        self.add_clause([!g, a, b]);
        self.add_clause([!g, !a, !b]);
        self.add_clause([g, !a, b]);
        self.add_clause([g, a, !b]);
        g
    }

    /// XOR of a slice via a chain of [`xor_gate`](Self::xor_gate)s; returns
    /// `None` for an empty slice.
    ///
    /// This is the linear-size construction the paper adopts instead of
    /// unfolding XORs into exponentially many clauses (Section 3.8).
    pub fn xor_chain(&mut self, lits: &[Lit]) -> Option<Lit> {
        let mut it = lits.iter().copied();
        let first = it.next()?;
        Some(it.fold(first, |acc, l| self.xor_gate(acc, l)))
    }

    /// n-ary OR: returns `g` with `g ↔ ⋁ lits` (`lits.len() + 1` clauses).
    /// Returns `None` for an empty slice.
    pub fn or_many(&mut self, lits: &[Lit]) -> Option<Lit> {
        if lits.is_empty() {
            return None;
        }
        if lits.len() == 1 {
            return Some(lits[0]);
        }
        let g = self.new_var().positive();
        let mut long = Vec::with_capacity(lits.len() + 1);
        long.push(!g);
        for &l in lits {
            self.add_clause([g, !l]);
            long.push(l);
        }
        self.add_clause(long);
        Some(g)
    }

    /// n-ary AND: returns `g` with `g ↔ ⋀ lits`. Returns `None` for an
    /// empty slice.
    pub fn and_many(&mut self, lits: &[Lit]) -> Option<Lit> {
        if lits.is_empty() {
            return None;
        }
        if lits.len() == 1 {
            return Some(lits[0]);
        }
        let g = self.new_var().positive();
        let mut long = Vec::with_capacity(lits.len() + 1);
        long.push(g);
        for &l in lits {
            self.add_clause([!g, l]);
            long.push(!l);
        }
        self.add_clause(long);
        Some(g)
    }

    /// Adds the constraint `⊕ lits = parity` *without* an output gate for
    /// the final XOR (saves one variable and two clauses): the chain prefix
    /// is built with gates and the last step is emitted as direct clauses.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty.
    pub fn add_xor_constraint(&mut self, lits: &[Lit], parity: bool) {
        assert!(!lits.is_empty(), "XOR constraint over no literals");
        if lits.len() == 1 {
            let l = if parity { lits[0] } else { !lits[0] };
            self.add_clause([l]);
            return;
        }
        let prefix = self.xor_chain(&lits[..lits.len() - 1]).expect("non-empty");
        let last = lits[lits.len() - 1];
        if parity {
            // prefix ⊕ last = 1  ⇔  prefix ↔ ¬last
            self.add_clause([prefix, last]);
            self.add_clause([!prefix, !last]);
        } else {
            // prefix ⊕ last = 0  ⇔  prefix ↔ last
            self.add_clause([prefix, !last]);
            self.add_clause([!prefix, last]);
        }
    }

    /// Evaluates the formula under a complete assignment (for testing and
    /// cross-checking models). `assignment[i]` is the value of variable `i`.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the variable count.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars, "assignment too short");
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment[l.var().index()])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force satisfiability of a Cnf (≤ 20 vars).
    fn brute_force_sat(cnf: &Cnf) -> Option<Vec<bool>> {
        let n = cnf.num_vars();
        assert!(n <= 20);
        for mask in 0u64..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            if cnf.eval(&assignment) {
                return Some(assignment);
            }
        }
        None
    }

    #[test]
    fn gates_have_correct_truth_tables() {
        // For each gate type and input combination, force inputs with unit
        // clauses and check which gate value is consistent by brute force.
        for (a_val, b_val) in [(false, false), (false, true), (true, false), (true, true)] {
            for gate in ["and", "or", "xor"] {
                let mut cnf = Cnf::new();
                let a = cnf.new_var();
                let b = cnf.new_var();
                let g = match gate {
                    "and" => cnf.and_gate(a.positive(), b.positive()),
                    "or" => cnf.or_gate(a.positive(), b.positive()),
                    _ => cnf.xor_gate(a.positive(), b.positive()),
                };
                cnf.add_clause([a.lit(a_val)]);
                cnf.add_clause([b.lit(b_val)]);
                let expect = match gate {
                    "and" => a_val && b_val,
                    "or" => a_val || b_val,
                    _ => a_val ^ b_val,
                };
                // Forcing the gate to the expected value stays SAT…
                let mut yes = cnf.clone();
                yes.add_clause([if expect { g } else { !g }]);
                assert!(brute_force_sat(&yes).is_some(), "{gate} {a_val} {b_val}");
                // …and to the opposite value becomes UNSAT.
                let mut no = cnf.clone();
                no.add_clause([if expect { !g } else { g }]);
                assert!(brute_force_sat(&no).is_none(), "{gate} {a_val} {b_val}");
            }
        }
    }

    #[test]
    fn xor_chain_computes_parity() {
        for n in 1..6usize {
            for mask in 0u32..(1 << n) {
                let mut cnf = Cnf::new();
                let vars = cnf.new_vars(n);
                let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
                let g = cnf.xor_chain(&lits).unwrap();
                for (i, v) in vars.iter().enumerate() {
                    cnf.add_clause([v.lit(mask >> i & 1 == 1)]);
                }
                let parity = (mask.count_ones() % 2) == 1;
                let mut forced = cnf.clone();
                forced.add_clause([if parity { g } else { !g }]);
                assert!(brute_force_sat(&forced).is_some());
                let mut wrong = cnf;
                wrong.add_clause([if parity { !g } else { g }]);
                assert!(brute_force_sat(&wrong).is_none());
            }
        }
    }

    #[test]
    fn or_many_and_many() {
        for n in 1..5usize {
            for mask in 0u32..(1 << n) {
                let mut cnf = Cnf::new();
                let vars = cnf.new_vars(n);
                let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
                let or_g = cnf.or_many(&lits).unwrap();
                let and_g = cnf.and_many(&lits).unwrap();
                for (i, v) in vars.iter().enumerate() {
                    cnf.add_clause([v.lit(mask >> i & 1 == 1)]);
                }
                let any = mask != 0;
                let all = mask == (1 << n) - 1;
                let mut check = cnf.clone();
                check.add_clause([if any { or_g } else { !or_g }]);
                check.add_clause([if all { and_g } else { !and_g }]);
                assert!(brute_force_sat(&check).is_some(), "n={n} mask={mask:b}");
            }
        }
    }

    #[test]
    fn xor_constraint_without_output_gate() {
        // ⊕ of 3 vars = 0: count satisfying assignments = 4.
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(3);
        let lits: Vec<Lit> = vars.iter().map(|v| v.positive()).collect();
        cnf.add_xor_constraint(&lits, false);
        let mut count = 0;
        for mask in 0u32..8 {
            let mut forced = cnf.clone();
            for (i, v) in vars.iter().enumerate() {
                forced.add_clause([v.lit(mask >> i & 1 == 1)]);
            }
            if brute_force_sat(&forced).is_some() {
                count += 1;
                assert_eq!(mask.count_ones() % 2, 0);
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn lit_true_is_constant() {
        let mut cnf = Cnf::new();
        let t = cnf.lit_true();
        let t2 = cnf.lit_true();
        assert_eq!(t, t2, "constant literal is cached");
        assert_eq!(cnf.lit_false(), !t);
        let model = brute_force_sat(&cnf).unwrap();
        assert!(t.eval(model[t.var().index()]));
    }

    #[test]
    fn stats_count_correctly() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause([a.positive(), b.negative()]);
        cnf.add_clause([b.positive()]);
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.num_literals(), 3);
        assert!((cnf.avg_clause_len() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_variable_rejected() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Var::new(3).positive()]);
    }
}

//! Core SAT types: variables and literals.

use std::fmt;

/// A propositional variable, indexed from 0.
///
/// # Example
///
/// ```
/// use sat::Var;
///
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.positive().var(), v);
/// assert_eq!(v.negative().var(), v);
/// assert!(v.negative().is_negative());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Creates a variable with the given 0-based index.
    #[inline]
    pub fn new(index: usize) -> Var {
        debug_assert!(index < u32::MAX as usize / 2, "variable index too large");
        Var(index as u32)
    }

    /// The 0-based index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given polarity
    /// (`true` ↦ positive).
    #[inline]
    pub fn lit(self, polarity: bool) -> Lit {
        if polarity {
            self.positive()
        } else {
            self.negative()
        }
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, packed as `var·2 + negated`.
///
/// # Example
///
/// ```
/// use sat::{Lit, Var};
///
/// let l = Var::new(5).negative();
/// assert_eq!(!l, Var::new(5).positive());
/// assert_eq!(l.to_dimacs(), -6);
/// assert_eq!(Lit::from_dimacs(-6), l);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True when this is the negated literal.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// True when this is the positive literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Packed code (`var·2 + negated`), usable as a dense array index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs from [`code`](Self::code).
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Converts to the DIMACS convention: 1-based, negative = negated.
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        let v = (self.0 >> 1) as i64 + 1;
        if self.is_negative() {
            -v
        } else {
            v
        }
    }

    /// Parses the DIMACS convention.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0` (DIMACS uses 0 as the clause terminator).
    #[inline]
    pub fn from_dimacs(value: i64) -> Lit {
        assert!(value != 0, "DIMACS literal cannot be zero");
        let var = Var::new(value.unsigned_abs() as usize - 1);
        var.lit(value > 0)
    }

    /// Evaluates the literal under an assignment of its variable.
    #[inline]
    pub fn eval(self, var_value: bool) -> bool {
        var_value ^ self.is_negative()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.0 >> 1)
        } else {
            write!(f, "x{}", self.0 >> 1)
        }
    }
}

/// Three-valued assignment state used inside the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    #[inline]
    pub(crate) fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// The value of a literal whose variable has this value.
    #[inline]
    pub(crate) fn under(self, lit: Lit) -> LBool {
        match (self, lit.is_negative()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, false) | (LBool::False, true) => LBool::True,
            _ => LBool::False,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_packing_round_trips() {
        for i in [0usize, 1, 2, 63, 1000] {
            let v = Var::new(i);
            assert_eq!(v.positive().var(), v);
            assert_eq!(v.negative().var(), v);
            assert!(v.positive().is_positive());
            assert!(v.negative().is_negative());
            assert_eq!(Lit::from_code(v.positive().code()), v.positive());
        }
    }

    #[test]
    fn negation_is_involution() {
        let l = Var::new(9).positive();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn dimacs_round_trip() {
        for d in [1i64, -1, 5, -42] {
            assert_eq!(Lit::from_dimacs(d).to_dimacs(), d);
        }
    }

    #[test]
    #[should_panic(expected = "cannot be zero")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn eval_respects_polarity() {
        let v = Var::new(0);
        assert!(v.positive().eval(true));
        assert!(!v.positive().eval(false));
        assert!(v.negative().eval(false));
        assert!(!v.negative().eval(true));
    }

    #[test]
    fn lbool_under_literal() {
        let v = Var::new(0);
        assert_eq!(LBool::True.under(v.positive()), LBool::True);
        assert_eq!(LBool::True.under(v.negative()), LBool::False);
        assert_eq!(LBool::False.under(v.negative()), LBool::True);
        assert_eq!(LBool::Undef.under(v.positive()), LBool::Undef);
    }

    #[test]
    fn polarity_helper() {
        let v = Var::new(4);
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }
}

//! Indexed binary max-heap ordered by variable activity (VSIDS).
//!
//! The solver needs `pop-max`, `insert`, and — crucially — `increase-key`
//! when a variable's activity is bumped while it sits in the heap, so the
//! heap tracks each variable's position.

/// Max-heap over variable indices, keyed by an external activity array.
#[derive(Debug, Clone, Default)]
pub(crate) struct ActivityHeap {
    /// Heap array of variable indices.
    heap: Vec<u32>,
    /// `pos[v]` = index of `v` in `heap`, or `NONE`.
    pos: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl ActivityHeap {
    pub(crate) fn new() -> Self {
        ActivityHeap::default()
    }

    /// Ensures capacity for variables `0..n`.
    pub(crate) fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, NONE);
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    pub(crate) fn contains(&self, v: usize) -> bool {
        self.pos.get(v).is_some_and(|&p| p != NONE)
    }

    /// Inserts `v` if absent.
    pub(crate) fn insert(&mut self, v: usize, activity: &[f64]) {
        self.grow(v + 1);
        if self.contains(v) {
            return;
        }
        self.pos[v] = self.heap.len() as u32;
        self.heap.push(v as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Pops the variable with maximal activity.
    pub(crate) fn pop(&mut self, activity: &[f64]) -> Option<usize> {
        let top = *self.heap.first()? as usize;
        let last = self.heap.pop().expect("non-empty");
        self.pos[top] = NONE;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores heap order after `activity[v]` increased.
    pub(crate) fn update(&mut self, v: usize, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v) {
            if p != NONE {
                self.sift_up(p as usize, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i] as usize] <= activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l] as usize] > activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r] as usize] > activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut h = ActivityHeap::new();
        for v in 0..4 {
            h.insert(v, &activity);
        }
        assert_eq!(h.pop(&activity), Some(1));
        assert_eq!(h.pop(&activity), Some(3));
        assert_eq!(h.pop(&activity), Some(2));
        assert_eq!(h.pop(&activity), Some(0));
        assert_eq!(h.pop(&activity), None);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let activity = vec![1.0, 2.0];
        let mut h = ActivityHeap::new();
        h.insert(0, &activity);
        h.insert(0, &activity);
        h.insert(1, &activity);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn update_after_bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for v in 0..3 {
            h.insert(v, &activity);
        }
        activity[0] = 10.0;
        h.update(0, &activity);
        assert_eq!(h.pop(&activity), Some(0));
    }

    #[test]
    fn randomized_against_sort() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let n = rng.gen_range(1..40);
            let activity: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..100.0)).collect();
            let mut h = ActivityHeap::new();
            for v in 0..n {
                h.insert(v, &activity);
            }
            let mut got = Vec::new();
            while let Some(v) = h.pop(&activity) {
                got.push(v);
            }
            let mut expect: Vec<usize> = (0..n).collect();
            expect.sort_by(|&a, &b| activity[b].partial_cmp(&activity[a]).unwrap());
            // Equal activities may tie-break arbitrarily; compare activities.
            let got_act: Vec<f64> = got.iter().map(|&v| activity[v]).collect();
            let expect_act: Vec<f64> = expect.iter().map(|&v| activity[v]).collect();
            assert_eq!(got_act, expect_act);
        }
    }
}

//! A self-contained SAT stack: CDCL solver plus CNF construction toolkit.
//!
//! The Fermihedral paper outsources solving to Kissat and CNF conversion to
//! Z3's Tseitin pass. This crate replaces both:
//!
//! * [`Solver`] — a conflict-driven clause-learning solver with two-watched
//!   literals, first-UIP learning, EVSIDS branching, phase saving, Luby
//!   restarts, LBD-based learnt-clause reduction, and incremental solving
//!   under assumptions (the weight-descent loop of Algorithm 1 re-solves the
//!   same formula under shrinking cardinality assumptions).
//! * [`Cnf`] — a formula builder with Tseitin gates (AND/OR/XOR/equality),
//!   XOR chains for the paper's anticommutativity and algebraic-independence
//!   constraints, and clause/variable statistics (Table 3).
//! * [`card::Totalizer`] — unary cardinality encoding whose output literals
//!   can be assumed, giving incremental `sum ≤ k` bounds.
//! * [`dimacs`] — DIMACS CNF import/export, so instances can be handed to
//!   external solvers for cross-checking.
//!
//! # Example
//!
//! ```
//! use sat::{Cnf, Solver, SolveResult};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.new_var();
//! let b = cnf.new_var();
//! // (a ∨ b) ∧ (¬a ∨ b) — forces b.
//! cnf.add_clause([a.positive(), b.positive()]);
//! cnf.add_clause([a.negative(), b.positive()]);
//!
//! let mut solver = Solver::from_cnf(&cnf);
//! match solver.solve() {
//!     SolveResult::Sat(model) => assert!(model.value(b)),
//!     _ => unreachable!("formula is satisfiable"),
//! }
//! ```

mod arena;
mod bitset;
pub mod cancel;
pub mod card;
pub mod cnf;
pub mod dimacs;
mod heap;
pub mod restart;
pub mod shared;
pub mod solver;
pub mod types;
mod watch;
pub mod wire;

pub use cancel::CancelToken;
pub use card::Totalizer;
pub use cnf::Cnf;
pub use restart::{
    FixedRestarts, GeometricRestarts, LubyRestarts, RestartPolicy, RestartPolicyKind,
};
pub use shared::{
    ExchangeConfig, ExportLbd, LaneHandle, RemoteExchange, SharedClause, SharedContext,
};
pub use solver::{Model, SolveResult, Solver, SolverStats};
pub use types::{Lit, Var};
pub use wire::{Frame, FrameIoError, RemoteClause, WireError};

//! A minimal word-packed bitset for the solver's per-variable side arrays.
//!
//! `saved_phase`, the analyzer's `seen` marks, and [`Model`] values were
//! `Vec<bool>` — one byte per variable. Packing them 64-per-word shrinks
//! the propagation/analysis working set eightfold, which matters because
//! these arrays are touched on every enqueue and every conflict.
//!
//! Unlike `mathkit::gf2::BitVec`, accesses here are `debug_assert`-checked
//! only: these arrays sit on the solver's hottest paths, and the solver
//! already guarantees indices are in range (they are variable indices it
//! allocated itself).

/// Word-packed vector of booleans, indexed like a `Vec<bool>`.
#[derive(Debug, Clone, Default)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    pub fn new() -> BitSet {
        BitSet::default()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Appends one bit.
    pub fn push(&mut self, value: bool) {
        let (word, bit) = (self.len / 64, self.len % 64);
        if bit == 0 {
            self.words.push(0);
        }
        if value {
            self.words[word] |= 1 << bit;
        }
        self.len += 1;
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// The bits unpacked into a `Vec<bool>` (cold-path interop).
    pub fn to_vec(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

impl FromIterator<bool> for BitSet {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> BitSet {
        let mut b = BitSet::new();
        for v in iter {
            b.push(v);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_round_trip() {
        let mut b = BitSet::new();
        for i in 0..200 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 200);
        for i in 0..200 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        b.set(100, true);
        b.set(99, false);
        assert!(b.get(100));
        assert!(!b.get(99));
        // Neighbours across the word boundary untouched.
        assert_eq!(b.get(63), 63 % 3 == 0);
        assert_eq!(b.get(64), 64 % 3 == 0);
    }

    #[test]
    fn collect_and_unpack() {
        let pattern: Vec<bool> = (0..130).map(|i| i % 7 < 3).collect();
        let b: BitSet = pattern.iter().copied().collect();
        assert_eq!(b.to_vec(), pattern);
    }
}

//! Cooperative cancellation shared across solver threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation token.
///
/// All clones share one flag. Raising it makes every [`Solver`] holding the
/// token's flag (via [`Solver::set_stop_flag`]) return
/// [`SolveResult::Interrupted`] promptly, and makes cooperative loops
/// (weight descent, annealing, portfolio workers) exit at their next
/// checkpoint. The flag is level-triggered and never auto-reset.
///
/// [`Solver`]: crate::Solver
/// [`Solver::set_stop_flag`]: crate::Solver::set_stop_flag
/// [`SolveResult::Interrupted`]: crate::SolveResult::Interrupted
///
/// # Example
///
/// ```
/// use sat::CancelToken;
///
/// let token = CancelToken::new();
/// let clone = token.clone();
/// assert!(!clone.is_cancelled());
/// token.cancel();
/// assert!(clone.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once any clone has cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The underlying flag, in the form [`Solver::set_stop_flag`] accepts.
    ///
    /// [`Solver::set_stop_flag`]: crate::Solver::set_stop_flag
    pub fn flag(&self) -> Arc<AtomicBool> {
        self.flag.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        b.cancel(); // idempotent
        assert!(a.is_cancelled());
    }

    #[test]
    fn distinct_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}

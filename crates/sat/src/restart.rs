//! Pluggable restart policies.
//!
//! The solver's run loop asks its policy for the next restart interval (a
//! number of conflicts) and restarts when the interval is exhausted.
//! Portfolio lanes diversify by schedule: Luby restarts with different
//! units explore shallowly-but-broadly, geometric schedules commit to
//! progressively deeper dives, and a fixed interval keeps a lane draining
//! its clause-exchange inbox at a steady cadence (imports happen at
//! restart boundaries, so the restart schedule doubles as the lane's
//! import clock).

use std::fmt;

/// A restart schedule: a stateful generator of conflict intervals.
///
/// The solver calls [`reset`](RestartPolicy::reset) at the start of every
/// `solve` call (so repeated incremental calls see identical schedules)
/// and [`next_interval`](RestartPolicy::next_interval) once at the start
/// and once after each restart.
pub trait RestartPolicy: fmt::Debug + Send {
    /// Number of conflicts to run before the next restart.
    fn next_interval(&mut self) -> u64;

    /// Rewinds the schedule to its beginning.
    fn reset(&mut self);

    /// Clones the policy behind the trait object (the solver itself is
    /// cloneable).
    fn clone_box(&self) -> Box<dyn RestartPolicy>;
}

impl Clone for Box<dyn RestartPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The Luby sequence scaled by a unit: 1,1,2,1,1,2,4,… × `unit`.
///
/// This is the classical default (MiniSat's schedule); varying `unit`
/// across portfolio lanes shifts where each lane spends its conflicts.
#[derive(Debug, Clone)]
pub struct LubyRestarts {
    unit: u64,
    index: u64,
}

impl LubyRestarts {
    /// A Luby schedule with the given unit (conflicts per sequence step).
    ///
    /// # Panics
    ///
    /// Panics when `unit` is 0.
    pub fn new(unit: u64) -> LubyRestarts {
        assert!(unit > 0, "luby unit must be positive");
        LubyRestarts { unit, index: 0 }
    }
}

impl RestartPolicy for LubyRestarts {
    fn next_interval(&mut self) -> u64 {
        let interval = luby(self.index) * self.unit;
        self.index += 1;
        interval
    }

    fn reset(&mut self) {
        self.index = 0;
    }

    fn clone_box(&self) -> Box<dyn RestartPolicy> {
        Box::new(self.clone())
    }
}

/// Geometrically growing intervals: `initial`, `initial·factor`, … —
/// each restart commits to a longer dive than the last.
#[derive(Debug, Clone)]
pub struct GeometricRestarts {
    initial: u64,
    factor: f64,
    current: f64,
}

impl GeometricRestarts {
    /// A geometric schedule starting at `initial` conflicts and growing by
    /// `factor` per restart.
    ///
    /// # Panics
    ///
    /// Panics when `initial` is 0 or `factor < 1`.
    pub fn new(initial: u64, factor: f64) -> GeometricRestarts {
        assert!(initial > 0, "initial interval must be positive");
        assert!(factor >= 1.0, "factor must not shrink the interval");
        GeometricRestarts {
            initial,
            factor,
            current: initial as f64,
        }
    }
}

impl RestartPolicy for GeometricRestarts {
    fn next_interval(&mut self) -> u64 {
        let interval = self.current as u64;
        self.current = (self.current * self.factor).min(u64::MAX as f64 / 2.0);
        interval.max(1)
    }

    fn reset(&mut self) {
        self.current = self.initial as f64;
    }

    fn clone_box(&self) -> Box<dyn RestartPolicy> {
        Box::new(self.clone())
    }
}

/// A constant restart interval — the steadiest import cadence for
/// clause-sharing lanes.
#[derive(Debug, Clone)]
pub struct FixedRestarts {
    interval: u64,
}

impl FixedRestarts {
    /// A fixed schedule restarting every `interval` conflicts.
    ///
    /// # Panics
    ///
    /// Panics when `interval` is 0.
    pub fn new(interval: u64) -> FixedRestarts {
        assert!(interval > 0, "restart interval must be positive");
        FixedRestarts { interval }
    }
}

impl RestartPolicy for FixedRestarts {
    fn next_interval(&mut self) -> u64 {
        self.interval
    }

    fn reset(&mut self) {}

    fn clone_box(&self) -> Box<dyn RestartPolicy> {
        Box::new(self.clone())
    }
}

/// Declarative policy choice, for configs that must be `Clone + PartialEq`
/// (lane descriptions, benchmark tables).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RestartPolicyKind {
    /// [`LubyRestarts`] with this unit.
    Luby {
        /// Conflicts per Luby step.
        unit: u64,
    },
    /// [`GeometricRestarts`].
    Geometric {
        /// First interval, in conflicts.
        initial: u64,
        /// Per-restart growth factor (≥ 1).
        factor: f64,
    },
    /// [`FixedRestarts`] every `interval` conflicts.
    Fixed {
        /// The constant interval, in conflicts.
        interval: u64,
    },
}

/// The solver's historical default schedule (Luby, unit 128).
pub const DEFAULT_RESTARTS: RestartPolicyKind = RestartPolicyKind::Luby { unit: 128 };

impl Default for RestartPolicyKind {
    fn default() -> Self {
        DEFAULT_RESTARTS
    }
}

impl RestartPolicyKind {
    /// Instantiates the schedule.
    pub fn build(&self) -> Box<dyn RestartPolicy> {
        match *self {
            RestartPolicyKind::Luby { unit } => Box::new(LubyRestarts::new(unit)),
            RestartPolicyKind::Geometric { initial, factor } => {
                Box::new(GeometricRestarts::new(initial, factor))
            }
            RestartPolicyKind::Fixed { interval } => Box::new(FixedRestarts::new(interval)),
        }
    }

    /// Short human-readable label (`luby128`, `geo100x1.5`, `fixed512`),
    /// used in lane names and benchmark tables.
    pub fn label(&self) -> String {
        match *self {
            RestartPolicyKind::Luby { unit } => format!("luby{unit}"),
            RestartPolicyKind::Geometric { initial, factor } => format!("geo{initial}x{factor}"),
            RestartPolicyKind::Fixed { interval } => format!("fixed{interval}"),
        }
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
pub(crate) fn luby(mut x: u64) -> u64 {
    // Find the finite subsequence containing index x.
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take(policy: &mut dyn RestartPolicy, n: usize) -> Vec<u64> {
        (0..n).map(|_| policy.next_interval()).collect()
    }

    #[test]
    fn luby_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expect.len() as u64).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn luby_policy_scales_by_unit() {
        let mut p = LubyRestarts::new(64);
        assert_eq!(take(&mut p, 7), vec![64, 64, 128, 64, 64, 128, 256]);
        // Reset rewinds the sequence.
        p.reset();
        assert_eq!(take(&mut p, 3), vec![64, 64, 128]);
    }

    #[test]
    fn default_kind_matches_historical_schedule() {
        // The pre-refactor solver hard-coded Luby with unit 128; the
        // default policy must reproduce that schedule exactly.
        let mut p = RestartPolicyKind::default().build();
        let expect: Vec<u64> = [1u64, 1, 2, 1, 1, 2, 4].iter().map(|x| x * 128).collect();
        assert_eq!(take(p.as_mut(), 7), expect);
    }

    #[test]
    fn geometric_growth() {
        let mut p = GeometricRestarts::new(100, 2.0);
        assert_eq!(take(&mut p, 4), vec![100, 200, 400, 800]);
        p.reset();
        assert_eq!(p.next_interval(), 100);
        // Factor 1 degenerates to a fixed schedule.
        let mut flat = GeometricRestarts::new(50, 1.0);
        assert_eq!(take(&mut flat, 3), vec![50, 50, 50]);
    }

    #[test]
    fn geometric_does_not_overflow() {
        let mut p = GeometricRestarts::new(u64::MAX / 4, 1000.0);
        for _ in 0..100 {
            assert!(p.next_interval() >= 1);
        }
    }

    #[test]
    fn fixed_interval_is_constant() {
        let mut p = FixedRestarts::new(512);
        assert_eq!(take(&mut p, 5), vec![512; 5]);
        p.reset();
        assert_eq!(p.next_interval(), 512);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(RestartPolicyKind::Luby { unit: 128 }.label(), "luby128");
        assert_eq!(
            RestartPolicyKind::Geometric {
                initial: 100,
                factor: 1.5
            }
            .label(),
            "geo100x1.5"
        );
        assert_eq!(
            RestartPolicyKind::Fixed { interval: 512 }.label(),
            "fixed512"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_luby_unit_panics() {
        let _ = LubyRestarts::new(0);
    }

    #[test]
    #[should_panic(expected = "shrink")]
    fn shrinking_geometric_panics() {
        let _ = GeometricRestarts::new(10, 0.5);
    }

    #[test]
    fn boxed_policies_clone() {
        let mut a: Box<dyn RestartPolicy> = Box::new(GeometricRestarts::new(10, 2.0));
        let _ = a.next_interval();
        let mut b = a.clone();
        // Clones carry the schedule position.
        assert_eq!(a.next_interval(), b.next_interval());
    }
}

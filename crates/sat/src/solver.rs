//! Conflict-driven clause-learning SAT solver.
//!
//! Architecture follows MiniSat [Eén & Sörensson 2003] with the now-standard
//! refinements the paper's solvers (Kissat/CaDiCaL) also build on:
//!
//! * clause storage in a flat arena ([`crate::arena`]): one contiguous
//!   `u32` buffer, garbage-collected in place at `reduce_db` time,
//! * two-watched-literal propagation with blocking literals over flat
//!   per-literal watcher segments ([`crate::watch`]),
//! * first-UIP conflict analysis with clause minimization,
//! * exponential VSIDS variable activities with an indexed max-heap,
//! * phase saving (word-packed, as are the analysis marks),
//! * Luby-sequence restarts,
//! * glue-(LBD-)aware learnt-clause database reduction,
//! * incremental solving under assumptions, which the Fermihedral descent
//!   loop (Algorithm 1) uses to tighten the Pauli-weight bound without
//!   rebuilding the formula,
//! * pluggable restart schedules ([`crate::restart`]) — Luby by default,
//!   geometric/fixed for portfolio diversity — and
//! * adaptive learnt-clause exchange with portfolio peers
//!   ([`crate::shared`]): eligible clauses are exported as they are
//!   learnt under a per-lane LBD threshold that the solver tightens or
//!   loosens (Glucose-style) from the observed usefulness of what it
//!   imports; foreign clauses are imported at solve-call starts and
//!   restart boundaries.

use crate::arena::{CRef, ClauseArena};
use crate::bitset::BitSet;
use crate::cnf::Cnf;
use crate::heap::ActivityHeap;
use crate::restart::{RestartPolicy, DEFAULT_RESTARTS};
use crate::shared::{ExportLbd, LaneHandle, SharedClause};
use crate::types::{LBool, Lit, Var};
use crate::watch::{WatchLists, Watcher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone)]
pub enum SolveResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The formula (under the given assumptions, if any) is unsatisfiable.
    Unsat,
    /// The conflict budget or timeout was exhausted first.
    Unknown,
    /// The external stop flag ([`Solver::set_stop_flag`]) was raised — a
    /// cooperating thread (e.g. a portfolio engine whose incumbent became
    /// optimal) cancelled the search.
    Interrupted,
}

impl SolveResult {
    /// The model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// True for [`SolveResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// True for [`SolveResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolveResult::Unsat)
    }
}

/// A satisfying assignment (word-packed, one bit per variable).
#[derive(Debug, Clone)]
pub struct Model {
    values: BitSet,
}

impl Model {
    /// Value of a variable (false for variables beyond the model, which can
    /// only be variables never mentioned in any clause).
    pub fn value(&self, v: Var) -> bool {
        v.index() < self.values.len() && self.values.get(v.index())
    }

    /// Value of a literal under the model.
    pub fn lit_value(&self, l: Lit) -> bool {
        l.eval(self.value(l.var()))
    }

    /// The assignment unpacked into one `bool` per variable.
    pub fn values(&self) -> Vec<bool> {
        self.values.to_vec()
    }
}

/// Cumulative solver statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of branching decisions.
    pub decisions: u64,
    /// Number of literal propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Learnt clauses deleted by database reductions.
    pub deleted_clauses: u64,
    /// Learnt-clause database reductions (arena garbage collections).
    pub db_reductions: u64,
    /// Learnt clauses exported to the clause exchange
    /// ([`Solver::set_clause_exchange`]).
    pub exported_clauses: u64,
    /// Foreign clauses imported from the clause exchange.
    pub imported_clauses: u64,
    /// Imports that were first deferred by their bound tag and admitted
    /// once this solver's own bound caught up.
    pub promoted_clauses: u64,
    /// Times an *imported* clause became the reason of a propagation —
    /// the per-lane usefulness signal the adaptive exchange filter feeds
    /// on (a clause that never propagates was not worth shipping).
    pub imported_reasons: u64,
    /// The current adaptive export-LBD threshold (0 when the solver was
    /// never connected to an exchange).
    pub adapted_export_lbd: u32,
}

const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f32 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
/// Clause activities are f32 (they live in one arena word), so they
/// rescale at a much lower ceiling than the f64 variable activities.
const CLAUSE_RESCALE_LIMIT: f32 = 1e20;
/// Imports deferred by their bound tag are parked here; beyond the cap the
/// oldest are discarded (sharing is best-effort).
const PENDING_IMPORT_CAP: usize = 4096;
/// The adaptive export filter re-evaluates after this many fresh imports.
const ADAPT_WINDOW: u64 = 16;
/// Imported-clause usefulness (reasons per import) at or above which the
/// export threshold loosens — peers' clauses are pulling their weight, so
/// ship more of ours.
const ADAPT_LOOSEN_RATE: f64 = 0.20;
/// Usefulness below which the export threshold tightens.
const ADAPT_TIGHTEN_RATE: f64 = 0.05;

/// The CDCL solver.
///
/// # Example
///
/// ```
/// use sat::{Solver, Var, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause([a.positive(), b.positive()]);
/// s.add_clause([a.negative()]);
/// let SolveResult::Sat(m) = s.solve() else { panic!() };
/// assert!(!m.value(a));
/// assert!(m.value(b));
///
/// // Incremental: the same solver answers under assumptions.
/// assert!(s.solve_with_assumptions(&[b.negative()]).is_unsat());
/// assert!(s.solve().is_sat());
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    arena: ClauseArena,
    watches: WatchLists,

    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<CRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    heap: ActivityHeap,
    saved_phase: BitSet,

    clause_inc: f32,
    max_learnts: f64,

    seen: BitSet,
    unsat: bool,

    // Incremental clause-population counters (the database filter scans
    // they replace were O(db) per conflict).
    n_problem_clauses: usize,
    n_learnt_clauses: usize,

    /// Reused simplification buffer for `add_clause` and the import path
    /// (no per-clause allocation on either).
    scratch: Vec<Lit>,

    stats: SolverStats,
    conflict_budget: Option<u64>,
    timeout: Option<Duration>,
    stop: Option<Arc<AtomicBool>>,
    rng_state: u64,
    random_branch: f64,

    restart: Box<dyn RestartPolicy>,
    shared: Option<LaneHandle>,
    bound_tag: Option<usize>,
    pending_imports: Vec<SharedClause>,

    /// Bounds the adaptive export filter moves within.
    export_lbd: ExportLbd,
    /// The current (adapted) export-LBD threshold.
    export_lbd_now: u32,
    /// Import/reason counters at the last adaptation, so each window
    /// judges only fresh traffic.
    adapt_imports_mark: u64,
    adapt_reasons_mark: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Solver {
        let export_lbd = ExportLbd::default();
        Solver {
            arena: ClauseArena::new(),
            watches: WatchLists::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: ActivityHeap::new(),
            saved_phase: BitSet::new(),
            clause_inc: 1.0,
            max_learnts: 0.0,
            seen: BitSet::new(),
            unsat: false,
            n_problem_clauses: 0,
            n_learnt_clauses: 0,
            scratch: Vec::new(),
            stats: SolverStats::default(),
            conflict_budget: None,
            timeout: None,
            stop: None,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            random_branch: 0.0,
            restart: DEFAULT_RESTARTS.build(),
            shared: None,
            bound_tag: None,
            pending_imports: Vec::new(),
            export_lbd,
            export_lbd_now: export_lbd.initial,
            adapt_imports_mark: 0,
            adapt_reasons_mark: 0,
        }
    }

    /// Builds a solver holding all clauses of `cnf`.
    pub fn from_cnf(cnf: &Cnf) -> Solver {
        let mut s = Solver::new();
        s.reserve_vars(cnf.num_vars());
        for c in cnf.clauses() {
            s.add_clause(c.iter().copied());
        }
        s
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assign.len());
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.watches.grow_to(2 * self.assign.len());
        self.heap.grow(self.assign.len());
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn reserve_vars(&mut self, n: usize) {
        while self.assign.len() < n {
            self.new_var();
        }
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem (non-learnt) clauses currently stored.
    pub fn num_clauses(&self) -> usize {
        self.n_problem_clauses
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Limits each subsequent [`solve`](Self::solve) call to roughly this
    /// many conflicts; `None` removes the limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Limits each subsequent [`solve`](Self::solve) call to this much wall
    /// time; `None` removes the limit. Checked every few hundred conflicts.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Replaces the restart schedule (default: Luby, unit 128). The
    /// schedule is rewound at the start of every [`solve`](Self::solve)
    /// call. Portfolio lanes diversify by handing each solver a different
    /// [`RestartPolicy`]; restarts are also when foreign clauses are
    /// imported, so the schedule sets the lane's import cadence.
    pub fn set_restart_policy(&mut self, policy: Box<dyn RestartPolicy>) {
        self.restart = policy;
    }

    /// Plugs this solver into a clause exchange
    /// ([`SharedContext`](crate::shared::SharedContext)) as the lane the
    /// handle was created for. While connected, eligible learnt clauses
    /// are exported as they are learnt, and foreign clauses are imported
    /// at every solve-call start and restart boundary. `None` disconnects.
    ///
    /// Connecting adopts the context's [`ExportLbd`] bounds and resets the
    /// adaptive threshold to their initial value (override with
    /// [`set_export_lbd`](Self::set_export_lbd) afterwards).
    ///
    /// All participating solvers must be loaded with the *same formula
    /// under the same variable numbering*; imported clauses join the
    /// learnt database (and are subject to its reduction policy).
    pub fn set_clause_exchange(&mut self, handle: Option<LaneHandle>) {
        if let Some(h) = &handle {
            self.set_export_lbd(h.export_bounds());
        }
        self.shared = handle;
        self.pending_imports.clear();
        self.adapt_imports_mark = self.stats.imported_clauses;
        self.adapt_reasons_mark = self.stats.imported_reasons;
    }

    /// Sets the bounds the adaptive export filter moves within and resets
    /// the current threshold to `bounds.initial`. Lanes diversify by
    /// starting from different bounds; `ExportLbd::fixed(t)` pins the
    /// threshold (disabling adaptation).
    pub fn set_export_lbd(&mut self, bounds: ExportLbd) {
        let b = bounds.normalized();
        self.export_lbd = b;
        self.export_lbd_now = b.initial;
        self.stats.adapted_export_lbd = b.initial;
    }

    /// The current (adapted) export-LBD threshold.
    pub fn adapted_export_lbd(&self) -> u32 {
        self.export_lbd_now
    }

    /// Declares the assumption context for exported clauses: descent
    /// callers set `Some(bound)` before a call that assumes
    /// `weight < bound`, and `None` for unconditional calls. Exports carry
    /// the tag; imports tagged with a *looser* bound than this solver's
    /// current tag are deferred until the local descent catches up. See
    /// [`shared`](crate::shared) for the soundness discussion.
    pub fn set_bound_tag(&mut self, tag: Option<usize>) {
        self.bound_tag = tag;
    }

    /// Installs a cooperative stop flag. When another thread stores `true`
    /// (with any ordering), the running [`solve`](Self::solve) call returns
    /// [`SolveResult::Interrupted`] within a few dozen conflicts/decisions.
    /// The flag is level-triggered: it is never cleared by the solver, so a
    /// raised flag also aborts *future* solve calls until the owner resets
    /// it.
    pub fn set_stop_flag(&mut self, stop: Option<Arc<AtomicBool>>) {
        self.stop = stop;
    }

    /// Seeds the solver's internal branching randomness. Together with
    /// [`set_random_branch`](Self::set_random_branch) this diversifies
    /// otherwise-identical solvers in a portfolio: different seeds explore
    /// the search space in different orders.
    pub fn set_random_seed(&mut self, seed: u64) {
        self.rng_state = scramble_seed(seed);
    }

    /// Sets the fraction of branching decisions made on a uniformly random
    /// unassigned variable instead of the activity-heap maximum (MiniSat's
    /// `random_var_freq`, default 0 = pure EVSIDS).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ freq ≤ 1`.
    pub fn set_random_branch(&mut self, freq: f64) {
        assert!((0.0..=1.0).contains(&freq), "freq={freq} not a probability");
        self.random_branch = freq;
    }

    /// Randomizes every variable's saved phase from `seed`. Combined with
    /// [`set_random_branch`](Self::set_random_branch), this gives portfolio
    /// workers genuinely different initial trajectories.
    pub fn randomize_phases(&mut self, seed: u64) {
        let mut state = scramble_seed(seed);
        for v in 0..self.saved_phase.len() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            self.saved_phase.set(v, state & 1 == 1);
        }
    }

    #[inline]
    fn next_random(&mut self) -> u64 {
        self.rng_state ^= self.rng_state << 13;
        self.rng_state ^= self.rng_state >> 7;
        self.rng_state ^= self.rng_state << 17;
        self.rng_state
    }

    #[inline]
    fn stop_requested(&self) -> bool {
        self.stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed))
    }

    /// Seeds the saved phase of a variable: branching decisions will first
    /// try this polarity. Seeding all variables with a known-good
    /// assignment (e.g. Bravyi-Kitaev in the Fermihedral descent) steers
    /// the first solution search toward it.
    pub fn set_phase(&mut self, v: Var, phase: bool) {
        assert!(v.index() < self.num_vars(), "unallocated variable");
        self.saved_phase.set(v.index(), phase);
    }

    /// Adds `amount` to a variable's branching activity. Combined with
    /// [`set_phase`](Self::set_phase) this front-loads decisions on a
    /// chosen variable set (e.g. the Fermihedral primary variables), after
    /// which pure Tseitin auxiliaries follow by unit propagation.
    pub fn boost_activity(&mut self, v: Var, amount: f64) {
        assert!(v.index() < self.num_vars(), "unallocated variable");
        self.activity[v.index()] += amount;
        self.heap.update(v.index(), &self.activity);
        if !self.heap.contains(v.index()) {
            self.heap.insert(v.index(), &self.activity);
        }
    }

    /// Adds a clause. Root-level-false literals are dropped, duplicates
    /// merged, and tautologies ignored. Automatically allocates any
    /// variables mentioned.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        debug_assert_eq!(self.decision_level(), 0, "clauses are added at root");
        if self.unsat {
            return;
        }
        let mut c = std::mem::take(&mut self.scratch);
        c.clear();
        c.extend(lits);
        if let Some(max_var) = c.iter().map(|l| l.var().index()).max() {
            self.reserve_vars(max_var + 1);
        }
        if !self.simplify_at_root(&mut c) {
            match c.len() {
                0 => self.unsat = true,
                1 => {
                    self.unchecked_enqueue(c[0], None);
                    if self.propagate().is_some() {
                        self.unsat = true;
                    }
                }
                _ => {
                    self.attach_clause(&c, false, false, 0, 0.0);
                }
            }
        }
        self.scratch = c;
    }

    /// Root-level clause simplification, in place: sorts, merges
    /// duplicates, and drops root-false literals. Returns `true` when the
    /// clause should be discarded entirely (tautology, or satisfied at
    /// root). Both `add_clause` and the import path run their shared
    /// scratch buffer through here.
    fn simplify_at_root(&self, buf: &mut Vec<Lit>) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        buf.sort_unstable();
        buf.dedup();
        let mut keep = 0usize;
        for i in 0..buf.len() {
            let l = buf[i];
            if i + 1 < buf.len() && buf[i + 1] == !l {
                return true; // contains l and ¬l
            }
            match self.value(l) {
                LBool::True => return true, // satisfied at root, forever
                LBool::False => {}          // root-false literal drops out
                LBool::Undef => {
                    buf[keep] = l;
                    keep += 1;
                }
            }
        }
        buf.truncate(keep);
        false
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. [`SolveResult::Unsat`]
    /// then means "unsatisfiable together with the assumptions".
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        let start = Instant::now();
        let mut span = telemetry::span("sat.solve");
        let stats_at_entry = self.stats;
        let budget_end = self.conflict_budget.map(|b| self.stats.conflicts + b);
        self.cancel_until(0);
        if self.unsat {
            return SolveResult::Unsat;
        }
        if self.stop_requested() {
            return SolveResult::Interrupted;
        }
        for a in assumptions {
            assert!(
                a.var().index() < self.num_vars(),
                "assumption references unallocated variable"
            );
        }
        // Foreign clauses published since the last call join here, before
        // the initial propagation (imports may include units).
        self.import_shared_clauses();
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }
        if self.unsat {
            return SolveResult::Unsat;
        }
        if self.max_learnts == 0.0 {
            self.max_learnts =
                ((self.n_problem_clauses + self.n_learnt_clauses) as f64 / 3.0).max(1000.0);
        }

        self.restart.reset();
        let mut conflicts_until_restart = self.restart.next_interval();
        let result = loop {
            if let Some(confl) = self.propagate() {
                // Conflict.
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    break SolveResult::Unsat;
                }
                let (learnt, bt_level, lbd) = self.analyze(confl);
                self.cancel_until(bt_level);
                self.record_learnt(learnt, lbd);
                self.decay_activities();

                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if let Some(end) = budget_end {
                    if self.stats.conflicts >= end {
                        break SolveResult::Unknown;
                    }
                }
                if self.stats.conflicts.is_multiple_of(64) && self.stop_requested() {
                    break SolveResult::Interrupted;
                }
                if self.stats.conflicts.is_multiple_of(256) {
                    if let Some(t) = self.timeout {
                        if start.elapsed() >= t {
                            break SolveResult::Unknown;
                        }
                    }
                }
            } else {
                // No conflict.
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    conflicts_until_restart = self.restart.next_interval();
                    telemetry::log_trace!(
                        "sat.solver",
                        "restart",
                        restarts = self.stats.restarts,
                        conflicts = self.stats.conflicts,
                        next_interval = conflicts_until_restart,
                    );
                    self.cancel_until(0);
                    // Restart boundary: drain the clause-exchange inbox.
                    self.import_shared_clauses();
                    if self.unsat {
                        break SolveResult::Unsat;
                    }
                    continue;
                }
                if self.learnt_count() as f64 > self.max_learnts {
                    self.reduce_db();
                }
                // Re-assert assumptions, then branch.
                if self.stats.decisions.is_multiple_of(512) && self.stop_requested() {
                    break SolveResult::Interrupted;
                }
                match self.pick_next(assumptions) {
                    PickResult::Decision(l) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(l, None);
                    }
                    PickResult::DummyLevel => {
                        self.trail_lim.push(self.trail.len());
                    }
                    PickResult::AssumptionConflict => break SolveResult::Unsat,
                    PickResult::AllAssigned => {
                        let values = (0..self.assign.len())
                            .map(|v| match self.assign[v] {
                                LBool::True => true,
                                LBool::False => false,
                                LBool::Undef => self.saved_phase.get(v),
                            })
                            .collect();
                        break SolveResult::Sat(Model { values });
                    }
                }
            }
        };
        self.cancel_until(0);
        if span.active() {
            let elapsed = start.elapsed();
            let conflicts = self.stats.conflicts - stats_at_entry.conflicts;
            span.attr(
                "result",
                match &result {
                    SolveResult::Sat(_) => "sat",
                    SolveResult::Unsat => "unsat",
                    SolveResult::Unknown => "unknown",
                    SolveResult::Interrupted => "interrupted",
                },
            );
            span.attr("conflicts", conflicts);
            span.attr(
                "propagations",
                self.stats.propagations - stats_at_entry.propagations,
            );
            span.attr("restarts", self.stats.restarts - stats_at_entry.restarts);
            span.attr(
                "learnt_clauses",
                self.stats.learnt_clauses - stats_at_entry.learnt_clauses,
            );
            span.attr(
                "imported_clauses",
                self.stats.imported_clauses - stats_at_entry.imported_clauses,
            );
            span.attr(
                "imported_reasons",
                self.stats.imported_reasons - stats_at_entry.imported_reasons,
            );
            span.attr(
                "conflicts_per_sec",
                conflicts as f64 / elapsed.as_secs_f64().max(1e-9),
            );
            if self.shared.is_some() {
                span.attr("export_lbd", self.export_lbd_now as u64);
            }
            if let Some(tag) = self.bound_tag {
                span.attr("bound_tag", tag);
            }
        }
        result
    }

    // ----- internal machinery -------------------------------------------

    #[inline]
    fn value(&self, l: Lit) -> LBool {
        self.assign[l.var().index()].under(l)
    }

    #[inline]
    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn learnt_count(&self) -> usize {
        self.n_learnt_clauses
    }

    fn attach_clause(
        &mut self,
        lits: &[Lit],
        learnt: bool,
        imported: bool,
        lbd: u32,
        activity: f32,
    ) -> CRef {
        debug_assert!(lits.len() >= 2);
        if learnt {
            self.n_learnt_clauses += 1;
        } else {
            self.n_problem_clauses += 1;
        }
        let cref = self.arena.alloc(lits, learnt, imported, lbd);
        if activity != 0.0 {
            self.arena.set_activity(cref, activity);
        }
        let (w0, w1) = (lits[0], lits[1]);
        self.watches
            .push((!w0).code(), Watcher { cref, blocker: w1 });
        self.watches
            .push((!w1).code(), Watcher { cref, blocker: w0 });
        cref
    }

    // ----- clause exchange ----------------------------------------------

    /// Drains the exchange inbox (and the locally deferred backlog) into
    /// the learnt database, then lets the adaptive export filter judge the
    /// fresh traffic. Must be called at decision level 0.
    fn import_shared_clauses(&mut self) {
        if self.shared.is_none() && self.pending_imports.is_empty() {
            return;
        }
        debug_assert_eq!(self.decision_level(), 0);
        // Deferred clauses first: the bound may have caught up since.
        let pending = std::mem::take(&mut self.pending_imports);
        for clause in pending {
            self.integrate_import(clause, true);
        }
        let Some(handle) = self.shared.clone() else {
            return;
        };
        let mut fresh = Vec::new();
        handle.drain_into(&mut fresh);
        for clause in fresh {
            self.integrate_import(clause, false);
        }
        self.adapt_export_threshold();
    }

    /// Moves the export-LBD threshold one step within its bounds, judged
    /// by how often the last window of imports actually propagated
    /// (Glucose-style usefulness feedback): peers sending useful clauses
    /// earn looser exports from us; useless traffic tightens them.
    fn adapt_export_threshold(&mut self) {
        let imports = self.stats.imported_clauses - self.adapt_imports_mark;
        if imports < ADAPT_WINDOW {
            return;
        }
        let reasons = self.stats.imported_reasons - self.adapt_reasons_mark;
        let rate = reasons as f64 / imports as f64;
        if rate >= ADAPT_LOOSEN_RATE {
            self.export_lbd_now = self
                .export_lbd_now
                .saturating_add(1)
                .min(self.export_lbd.ceiling);
        } else if rate < ADAPT_TIGHTEN_RATE {
            self.export_lbd_now = self
                .export_lbd_now
                .saturating_sub(1)
                .max(self.export_lbd.floor);
        }
        self.adapt_imports_mark = self.stats.imported_clauses;
        self.adapt_reasons_mark = self.stats.imported_reasons;
        if self.export_lbd_now != self.stats.adapted_export_lbd {
            telemetry::log_trace!(
                "sat.solver",
                "export threshold adapted",
                export_lbd = self.export_lbd_now as u64,
                reason_rate = rate,
                window_imports = imports,
            );
        }
        self.stats.adapted_export_lbd = self.export_lbd_now;
    }

    /// Files one foreign clause: defers it when its bound tag is looser
    /// than ours, otherwise simplifies it against the root assignment and
    /// attaches it as a learnt clause (or enqueues it as a root unit).
    fn integrate_import(&mut self, clause: SharedClause, was_deferred: bool) {
        if self.unsat {
            return;
        }
        if !self.bound_admits(clause.bound_tag) {
            if self.pending_imports.len() >= PENDING_IMPORT_CAP {
                // Discard the stalest deferred clause (its bound is the
                // least likely to ever be reached).
                self.pending_imports.remove(0);
            }
            self.pending_imports.push(clause);
            return;
        }
        if let Some(max_var) = clause.lits.iter().map(|l| l.var().index()).max() {
            self.reserve_vars(max_var + 1);
        }
        // Root-level simplification (we are at decision level 0, so every
        // assigned variable is root-fixed).
        let mut lits = std::mem::take(&mut self.scratch);
        lits.clear();
        lits.extend_from_slice(&clause.lits);
        if !self.simplify_at_root(&mut lits) {
            match lits.len() {
                0 => self.unsat = true,
                1 => self.unchecked_enqueue(lits[0], None),
                _ => {
                    self.attach_clause(&lits, true, true, clause.lbd, self.clause_inc);
                }
            }
            self.stats.imported_clauses += 1;
            if was_deferred {
                self.stats.promoted_clauses += 1;
            }
        }
        self.scratch = lits;
    }

    /// Whether a clause derived under `tag` is admissible under our own
    /// current bound assumption: untagged clauses always are; tagged ones
    /// need our assumption to be at least as tight as the producer's.
    fn bound_admits(&self, tag: Option<usize>) -> bool {
        match tag {
            None => true,
            Some(k) => self.bound_tag.is_some_and(|own| own <= k),
        }
    }

    /// Offers a freshly learnt clause to the exchange, under the current
    /// adaptive threshold.
    fn export_learnt(&mut self, lits: &[Lit], lbd: u32) {
        if let Some(handle) = &self.shared {
            if handle.export_at(lits, lbd, self.bound_tag, self.export_lbd_now) {
                self.stats.exported_clauses += 1;
            }
        }
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<CRef>) {
        debug_assert_eq!(self.value(l), LBool::Undef);
        let v = l.var().index();
        self.assign[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level() as u32;
        self.reason[v] = from;
        self.saved_phase.set(v, l.is_positive());
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause reference if any.
    ///
    /// Watcher lists are scanned by index with a kept-prefix compaction.
    /// In-loop pushes only ever target *other* literals' segments (a
    /// replacement watch is the negation of a non-false literal, and `!p`
    /// is false), so `p`'s segment never moves under the scan.
    fn propagate(&mut self) -> Option<CRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let pcode = p.code();
            let false_lit = !p;

            let n = self.watches.len_of(pcode);
            let mut kept = 0usize;
            let mut i = 0usize;
            let mut conflict = None;
            'watchers: while i < n {
                let w = self.watches.get(pcode, i);
                i += 1;
                // Fast path: blocker already true.
                if self.value(w.blocker) == LBool::True {
                    self.watches.set(pcode, kept, w);
                    kept += 1;
                    continue;
                }
                let cref = w.cref;
                // Normalize: watched false literal at position 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.arena.lit(cref, 1), false_lit);
                let first = self.arena.lit(cref, 0);
                if first != w.blocker && self.value(first) == LBool::True {
                    self.watches.set(
                        pcode,
                        kept,
                        Watcher {
                            cref,
                            blocker: first,
                        },
                    );
                    kept += 1;
                    continue;
                }
                // Search replacement watch.
                let len = self.arena.len(cref);
                for k in 2..len {
                    if self.value(self.arena.lit(cref, k)) != LBool::False {
                        self.arena.swap_lits(cref, 1, k);
                        let new_watch = self.arena.lit(cref, 1);
                        self.watches.push(
                            (!new_watch).code(),
                            Watcher {
                                cref,
                                blocker: first,
                            },
                        );
                        continue 'watchers;
                    }
                }
                // No replacement: unit or conflict.
                self.watches.set(
                    pcode,
                    kept,
                    Watcher {
                        cref,
                        blocker: first,
                    },
                );
                kept += 1;
                if self.value(first) == LBool::False {
                    // Conflict: keep remaining watchers and bail out.
                    while i < n {
                        let rest = self.watches.get(pcode, i);
                        self.watches.set(pcode, kept, rest);
                        kept += 1;
                        i += 1;
                    }
                    self.qhead = self.trail.len();
                    conflict = Some(cref);
                } else {
                    if self.arena.is_imported(cref) {
                        self.stats.imported_reasons += 1;
                    }
                    self.unchecked_enqueue(first, Some(cref));
                }
                if conflict.is_some() {
                    break;
                }
            }
            self.watches.truncate(pcode, kept);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis. Returns (learnt clause with asserting
    /// literal first, backtrack level, LBD).
    fn analyze(&mut self, confl: CRef) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = Vec::with_capacity(8);
        let mut to_clear: Vec<usize> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();
        let current_level = self.decision_level() as u32;

        loop {
            {
                self.bump_clause(confl);
                let start = usize::from(p.is_some());
                for pos in start..self.arena.len(confl) {
                    let q = self.arena.lit(confl, pos);
                    let v = q.var().index();
                    if !self.seen.get(v) && self.level[v] > 0 {
                        self.seen.set(v, true);
                        to_clear.push(v);
                        self.bump_var(v);
                        if self.level[v] >= current_level {
                            counter += 1;
                        } else {
                            learnt.push(q);
                        }
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen.get(self.trail[index].var().index()) {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen.set(pl.var().index(), false);
            counter -= 1;
            p = Some(pl);
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision has a reason");
        }
        let uip = !p.expect("conflict analysis found a UIP");

        // Cheap clause minimization: drop literals implied by the rest.
        let minimized: Vec<Lit> = learnt
            .iter()
            .copied()
            .filter(|&q| !self.literal_redundant(q))
            .collect();
        let mut clause = Vec::with_capacity(minimized.len() + 1);
        clause.push(uip);
        clause.extend(minimized);

        for v in to_clear {
            self.seen.set(v, false);
        }

        // Backtrack level: highest level among non-UIP literals.
        let bt_level = if clause.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..clause.len() {
                if self.level[clause[i].var().index()] > self.level[clause[max_i].var().index()] {
                    max_i = i;
                }
            }
            clause.swap(1, max_i);
            self.level[clause[1].var().index()] as usize
        };

        // LBD: number of distinct decision levels.
        let mut levels: Vec<u32> = clause.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        let lbd = levels.len() as u32;

        (clause, bt_level, lbd)
    }

    /// A literal of the learnt clause is redundant when its reason clause's
    /// other literals are all already marked `seen` (self-subsumption).
    fn literal_redundant(&self, q: Lit) -> bool {
        let v = q.var().index();
        let Some(r) = self.reason[v] else {
            return false;
        };
        self.arena.lits(r).skip(1).all(|l| {
            let lv = l.var().index();
            self.level[lv] == 0 || self.seen.get(lv)
        })
    }

    fn record_learnt(&mut self, clause: Vec<Lit>, lbd: u32) {
        self.stats.learnt_clauses += 1;
        self.export_learnt(&clause, lbd);
        if clause.len() == 1 {
            debug_assert_eq!(self.decision_level(), 0);
            if self.value(clause[0]) == LBool::Undef {
                self.unchecked_enqueue(clause[0], None);
            }
            return;
        }
        let asserting = clause[0];
        let cref = self.attach_clause(&clause, true, false, lbd, self.clause_inc);
        self.unchecked_enqueue(asserting, Some(cref));
    }

    fn cancel_until(&mut self, target: usize) {
        if self.decision_level() <= target {
            return;
        }
        let limit = self.trail_lim[target];
        for idx in (limit..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var().index();
            self.assign[v] = LBool::Undef;
            self.reason[v] = None;
            if !self.heap.contains(v) {
                self.heap.insert(v, &self.activity);
            }
        }
        self.trail.truncate(limit);
        self.trail_lim.truncate(target);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1.0 / RESCALE_LIMIT;
            }
            self.var_inc *= 1.0 / RESCALE_LIMIT;
        }
        self.heap.update(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: CRef) {
        if !self.arena.is_learnt(cref) {
            return;
        }
        let a = self.arena.activity(cref) + self.clause_inc;
        self.arena.set_activity(cref, a);
        if a > CLAUSE_RESCALE_LIMIT {
            self.arena.scale_activities(1.0 / CLAUSE_RESCALE_LIMIT);
            self.clause_inc /= CLAUSE_RESCALE_LIMIT;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
        self.clause_inc /= CLAUSE_DECAY;
    }

    /// Deletes roughly half of the learnt clauses, preferring high-LBD,
    /// low-activity ones, then compacts the arena in place and remaps
    /// every outstanding reference (reasons and watchers). Clauses that
    /// are reasons for current assignments are kept.
    fn reduce_db(&mut self) {
        self.stats.db_reductions += 1;
        self.max_learnts *= 1.15;

        // Rank learnt clauses (binaries are kept unconditionally).
        let mut ranked: Vec<CRef> = self
            .arena
            .iter()
            .filter(|&c| self.arena.is_learnt(c) && self.arena.len(c) > 2)
            .collect();
        ranked.sort_by(|&a, &b| {
            self.arena.lbd(a).cmp(&self.arena.lbd(b)).then(
                self.arena
                    .activity(b)
                    .partial_cmp(&self.arena.activity(a))
                    .unwrap(),
            )
        });
        let keep_from_ranked = ranked.len() / 2;
        for &c in ranked.iter().skip(keep_from_ranked) {
            if !self.is_locked(c) {
                self.arena.mark_dead(c);
                self.stats.deleted_clauses += 1;
                self.n_learnt_clauses -= 1;
            }
        }

        // Compact the arena and remap references through the GC map.
        telemetry::log_debug!(
            "sat.solver",
            "clause database reduced",
            reductions = self.stats.db_reductions,
            ranked = ranked.len(),
            kept = keep_from_ranked,
            deleted_total = self.stats.deleted_clauses,
            max_learnts = self.max_learnts,
        );
        let map = self.arena.collect();
        for r in self.reason.iter_mut() {
            if let Some(old) = *r {
                *r = Some(map.lookup(old).expect("reason clause survived collection"));
            }
        }
        self.watches.retain_map(|c| map.lookup(c));
        self.watches.rebuild();
    }

    fn is_locked(&self, cref: CRef) -> bool {
        let first = self.arena.lit(cref, 0);
        self.value(first) == LBool::True && self.reason[first.var().index()] == Some(cref)
    }

    fn pick_next(&mut self, assumptions: &[Lit]) -> PickResult {
        // Re-assert assumptions in order, one decision level each.
        if self.decision_level() < assumptions.len() {
            let a = assumptions[self.decision_level()];
            return match self.value(a) {
                LBool::True => PickResult::DummyLevel,
                LBool::False => PickResult::AssumptionConflict,
                LBool::Undef => PickResult::Decision(a),
            };
        }
        // Occasional random decision for portfolio diversity (MiniSat's
        // random_var_freq): pick a uniformly random unassigned variable.
        if self.random_branch > 0.0 {
            let draw = (self.next_random() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if draw < self.random_branch && !self.assign.is_empty() {
                for _ in 0..8 {
                    let v = (self.next_random() % self.assign.len() as u64) as usize;
                    if self.assign[v] == LBool::Undef {
                        return PickResult::Decision(Var::new(v).lit(self.saved_phase.get(v)));
                    }
                }
                // All eight draws hit assigned variables; fall through to
                // the heap.
            }
        }
        // Heuristic decision.
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assign[v] == LBool::Undef {
                return PickResult::Decision(Var::new(v).lit(self.saved_phase.get(v)));
            }
        }
        // Nothing left in the heap: confirm all variables assigned.
        if self.assign.contains(&LBool::Undef) {
            // Repopulate (can happen when vars were added after a solve).
            for v in 0..self.assign.len() {
                if self.assign[v] == LBool::Undef {
                    self.heap.insert(v, &self.activity);
                }
            }
            let v = self
                .heap
                .pop(&self.activity)
                .expect("unassigned variable exists");
            return PickResult::Decision(Var::new(v).lit(self.saved_phase.get(v)));
        }
        PickResult::AllAssigned
    }

    // ----- test-only inspection -----------------------------------------

    /// Test hook: pins the reduce-db trigger low to force collections.
    #[cfg(test)]
    fn set_max_learnts_for_test(&mut self, v: f64) {
        self.max_learnts = v;
    }

    /// Test hook: recounts the database by a full arena scan, to check the
    /// incremental counters against.
    #[cfg(test)]
    fn db_counts_by_scan(&self) -> (usize, usize) {
        let mut problem = 0;
        let mut learnt = 0;
        for c in self.arena.iter() {
            if self.arena.is_learnt(c) {
                learnt += 1;
            } else {
                problem += 1;
            }
        }
        (problem, learnt)
    }

    /// Test hook: asserts the cross-structure invariants that arena GC
    /// must preserve — every watcher and reason references a live clause,
    /// watch lists sit on the negations of the first two literals, and
    /// every clause is watched exactly twice.
    #[cfg(test)]
    fn check_integrity(&self) {
        use std::collections::HashMap;
        assert_eq!(self.decision_level(), 0, "integrity checks run at root");
        let mut live: HashMap<CRef, (Lit, Lit)> = HashMap::new();
        for c in self.arena.iter() {
            assert!(self.arena.len(c) >= 2, "arena clause too short");
            for l in self.arena.lits(c) {
                assert!(l.var().index() < self.num_vars(), "literal out of range");
            }
            live.insert(c, (self.arena.lit(c, 0), self.arena.lit(c, 1)));
        }
        let mut watch_count: HashMap<CRef, usize> = HashMap::new();
        for code in 0..self.watches.num_lits() {
            let watched = !Lit::from_code(code);
            for w in self.watches.iter_list(code) {
                let (w0, w1) = *live.get(&w.cref).expect("watcher references a live clause");
                assert!(
                    watched == w0 || watched == w1,
                    "watch list holds a non-watched literal"
                );
                *watch_count.entry(w.cref).or_default() += 1;
            }
        }
        for &c in live.keys() {
            assert_eq!(
                watch_count.get(&c).copied().unwrap_or(0),
                2,
                "clause must be watched exactly twice"
            );
        }
        for r in &self.reason {
            if let Some(c) = *r {
                assert!(live.contains_key(&c), "reason references a dead clause");
            }
        }
    }
}

/// SplitMix64 finalizer: decorrelates adjacent seeds (1,2,3,... are the
/// common portfolio inputs) and guarantees the non-zero state xorshift
/// needs. A plain `seed | 1` would alias every even seed onto the next
/// odd one.
fn scramble_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z ^ (z >> 31);
    if z == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        z
    }
}

enum PickResult {
    Decision(Lit),
    DummyLevel,
    AssumptionConflict,
    AllAssigned,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn lit(i: i64) -> Lit {
        Lit::from_dimacs(i)
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(Solver::new().solve().is_sat());
    }

    #[test]
    fn unit_clauses_propagate() {
        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1), lit(2)]);
        s.add_clause([lit(-2), lit(3)]);
        let SolveResult::Sat(m) = s.solve() else {
            panic!()
        };
        assert!(m.lit_value(lit(1)) && m.lit_value(lit(2)) && m.lit_value(lit(3)));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        s.add_clause([lit(1)]);
        s.add_clause([lit(-1)]);
        assert!(s.solve().is_unsat());
        // Stays UNSAT on re-solve.
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause([]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn tautologies_are_ignored() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(-1)]);
        assert_eq!(s.num_clauses(), 0);
        assert!(s.solve().is_sat());
    }

    /// Pigeonhole principle PHP(n+1, n): unsatisfiable.
    fn pigeonhole(pigeons: usize, holes: usize) -> Cnf {
        let mut cnf = Cnf::new();
        let var = |p: usize, h: usize| Var::new(p * holes + h);
        for _ in 0..pigeons * holes {
            cnf.new_var();
        }
        // Every pigeon sits somewhere.
        for p in 0..pigeons {
            cnf.add_clause((0..holes).map(|h| var(p, h).positive()));
        }
        // No two pigeons share a hole.
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    cnf.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
                }
            }
        }
        cnf
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..6usize {
            let cnf = pigeonhole(n + 1, n);
            assert!(
                Solver::from_cnf(&cnf).solve().is_unsat(),
                "PHP({},{n})",
                n + 1
            );
        }
    }

    #[test]
    fn pigeonhole_sat_when_enough_holes() {
        let cnf = pigeonhole(4, 4);
        let SolveResult::Sat(m) = Solver::from_cnf(&cnf).solve() else {
            panic!()
        };
        assert!(cnf.eval(&m.values()));
    }

    #[test]
    fn assumptions_are_incremental() {
        let mut s = Solver::new();
        // x1 xor x2 (as CNF)
        s.add_clause([lit(1), lit(2)]);
        s.add_clause([lit(-1), lit(-2)]);
        let r1 = s.solve_with_assumptions(&[lit(1)]);
        assert!(r1.model().unwrap().lit_value(lit(-2)));
        let r2 = s.solve_with_assumptions(&[lit(2)]);
        assert!(r2.model().unwrap().lit_value(lit(-1)));
        assert!(s.solve_with_assumptions(&[lit(1), lit(2)]).is_unsat());
        // Solver unaffected afterwards.
        assert!(s.solve().is_sat());
    }

    #[test]
    fn conflicting_assumptions_unsat() {
        let mut s = Solver::new();
        s.add_clause([lit(1), lit(2)]);
        assert!(s.solve_with_assumptions(&[lit(-1), lit(1)]).is_unsat());
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard instance with a tiny budget must return Unknown.
        let cnf = pigeonhole(8, 7);
        let mut s = Solver::from_cnf(&cnf);
        s.set_conflict_budget(Some(5));
        assert!(matches!(s.solve(), SolveResult::Unknown));
        // Removing the budget solves it.
        s.set_conflict_budget(None);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn model_satisfies_formula_on_random_3sat() {
        let mut rng = StdRng::seed_from_u64(99);
        for round in 0..60 {
            let nvars = rng.gen_range(5..22);
            let nclauses = rng.gen_range(1..nvars * 4);
            let mut cnf = Cnf::new();
            cnf.new_vars(nvars);
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(0..nvars);
                    c.push(Var::new(v).lit(rng.gen_bool(0.5)));
                }
                cnf.add_clause(c);
            }
            let result = Solver::from_cnf(&cnf).solve();
            // Cross-check against brute force.
            let brute = (0u64..1 << nvars).any(|mask| {
                let assignment: Vec<bool> = (0..nvars).map(|i| mask >> i & 1 == 1).collect();
                cnf.eval(&assignment)
            });
            match result {
                SolveResult::Sat(m) => {
                    assert!(cnf.eval(&m.values()), "round {round}: bad model");
                    assert!(brute, "round {round}: solver SAT but brute UNSAT");
                }
                SolveResult::Unsat => assert!(!brute, "round {round}: solver UNSAT but brute SAT"),
                SolveResult::Unknown | SolveResult::Interrupted => {
                    panic!("round {round}: unexpected Unknown/Interrupted")
                }
            }
        }
    }

    #[test]
    fn clause_database_reduction_is_sound() {
        // A formula family needing many conflicts: random XOR chains.
        let mut rng = StdRng::seed_from_u64(4);
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(40);
        for _ in 0..70 {
            let a = vars[rng.gen_range(0usize..40)].positive();
            let b = vars[rng.gen_range(0usize..40)].positive();
            let c = vars[rng.gen_range(0usize..40)].positive();
            let g1 = cnf.xor_gate(a, b);
            let g2 = cnf.xor_gate(g1, c);
            cnf.add_clause([g2]);
        }
        let mut s = Solver::from_cnf(&cnf);
        if let SolveResult::Sat(m) = s.solve() {
            assert!(cnf.eval(&m.values()));
        }
        // Either answer is legitimate; soundness is what we checked above.
    }

    #[test]
    fn variables_added_after_solve() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([a.positive()]);
        assert!(s.solve().is_sat());
        let b = s.new_var();
        s.add_clause([b.negative()]);
        let SolveResult::Sat(m) = s.solve() else {
            panic!()
        };
        assert!(m.value(a));
        assert!(!m.value(b));
    }

    #[test]
    fn pre_raised_stop_flag_interrupts_immediately() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let mut s = Solver::from_cnf(&pigeonhole(8, 7));
        let stop = Arc::new(AtomicBool::new(true));
        s.set_stop_flag(Some(stop.clone()));
        assert!(matches!(s.solve(), SolveResult::Interrupted));
        // Clearing the flag lets the solve proceed to the real answer.
        stop.store(false, Ordering::Relaxed);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn stop_flag_terminates_long_solve_promptly() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        use std::time::Duration;
        // PHP(10,9) takes far longer than the test budget to refute; the
        // stop flag must cut it short.
        let stop = Arc::new(AtomicBool::new(false));
        let worker_stop = stop.clone();
        let worker = std::thread::spawn(move || {
            let mut s = Solver::from_cnf(&pigeonhole(10, 9));
            s.set_stop_flag(Some(worker_stop));
            let start = Instant::now();
            let result = s.solve();
            (result, start.elapsed())
        });
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::Relaxed);
        let (result, elapsed) = worker.join().unwrap();
        assert!(matches!(result, SolveResult::Interrupted), "{result:?}");
        assert!(
            elapsed < Duration::from_secs(5),
            "interrupt took {elapsed:?}"
        );
    }

    #[test]
    fn random_branching_is_sound() {
        let mut rng = StdRng::seed_from_u64(17);
        for round in 0..30 {
            let nvars = rng.gen_range(5usize..18);
            let nclauses = rng.gen_range(1..nvars * 4);
            let mut cnf = Cnf::new();
            cnf.new_vars(nvars);
            for _ in 0..nclauses {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = rng.gen_range(0..nvars);
                    c.push(Var::new(v).lit(rng.gen_bool(0.5)));
                }
                cnf.add_clause(c);
            }
            let brute = (0u64..1 << nvars).any(|mask| {
                let assignment: Vec<bool> = (0..nvars).map(|i| mask >> i & 1 == 1).collect();
                cnf.eval(&assignment)
            });
            let mut s = Solver::from_cnf(&cnf);
            s.set_random_seed(round as u64 + 1);
            s.set_random_branch(0.5);
            s.randomize_phases(round as u64 + 99);
            match s.solve() {
                SolveResult::Sat(m) => {
                    assert!(cnf.eval(&m.values()), "round {round}: bad model");
                    assert!(brute, "round {round}: solver SAT but brute UNSAT");
                }
                SolveResult::Unsat => assert!(!brute, "round {round}: solver UNSAT but brute SAT"),
                other => panic!("round {round}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn distinct_seeds_diversify_search() {
        // Two solvers on the same satisfiable formula with different seeds
        // and heavy random branching should (almost surely) take different
        // decision trajectories. Statistical, but with 40 variables the
        // collision probability is negligible.
        let mut rng = StdRng::seed_from_u64(23);
        let mut cnf = Cnf::new();
        cnf.new_vars(40);
        for _ in 0..80 {
            let mut c = Vec::new();
            for _ in 0..3 {
                c.push(Var::new(rng.gen_range(0usize..40)).lit(rng.gen_bool(0.5)));
            }
            cnf.add_clause(c);
        }
        let run = |seed: u64| {
            let mut s = Solver::from_cnf(&cnf);
            s.set_random_seed(seed);
            s.set_random_branch(0.9);
            s.randomize_phases(seed);
            let result = s.solve();
            (result.model().map(|m| m.values()), s.stats().decisions)
        };
        // Seeds 2 and 3 specifically: a naive `seed | 1` state fix-up
        // aliases this adjacent even/odd pair onto one stream.
        let (m1, d1) = run(2);
        let (m2, d2) = run(3);
        assert!(m1 != m2 || d1 != d2, "seeds 2 and 3 were indistinguishable");
    }

    #[test]
    fn clause_counters_stay_incremental() {
        // num_clauses/learnt_count must match a full arena scan after
        // heavy learning and reductions (they are O(1) counters).
        let cnf = pigeonhole(7, 6);
        let mut s = Solver::from_cnf(&cnf);
        assert_eq!(s.num_clauses(), cnf.num_clauses());
        assert!(s.solve().is_unsat());
        let (problem, learnt) = s.db_counts_by_scan();
        assert_eq!(s.num_clauses(), problem);
        assert_eq!(s.learnt_count(), learnt);
    }

    #[test]
    fn restart_policy_is_pluggable_and_sound() {
        use crate::restart::{FixedRestarts, GeometricRestarts};
        // The same UNSAT instance under aggressive fixed restarts and
        // a slow geometric schedule: identical verdicts, and the fixed
        // schedule must actually restart more.
        let cnf = pigeonhole(6, 5);
        let mut fixed = Solver::from_cnf(&cnf);
        fixed.set_restart_policy(Box::new(FixedRestarts::new(8)));
        assert!(fixed.solve().is_unsat());
        let mut geo = Solver::from_cnf(&cnf);
        geo.set_restart_policy(Box::new(GeometricRestarts::new(10_000, 2.0)));
        assert!(geo.solve().is_unsat());
        if fixed.stats().conflicts >= 16 {
            assert!(fixed.stats().restarts > geo.stats().restarts);
        }
    }

    #[test]
    fn gc_compaction_keeps_watchers_and_reasons_consistent() {
        // Force many arena collections on a conflict-heavy instance and
        // re-check the cross-structure invariants after every chunk: every
        // reason and watcher must survive each sliding compaction remap.
        let cnf = pigeonhole(7, 6);
        let mut s = Solver::from_cnf(&cnf);
        s.set_max_learnts_for_test(40.0);
        s.set_conflict_budget(Some(500));
        let mut verdict = None;
        for _ in 0..1000 {
            match s.solve() {
                SolveResult::Unknown => s.check_integrity(),
                SolveResult::Unsat => {
                    verdict = Some(());
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(verdict.is_some(), "PHP(7,6) must be refuted");
        s.check_integrity();
        assert!(
            s.stats().db_reductions >= 2,
            "test must exercise repeated collections, got {}",
            s.stats().db_reductions
        );
    }

    #[test]
    fn adaptive_export_threshold_moves_within_bounds() {
        use crate::shared::{ExchangeConfig, SharedContext};
        let cfg = ExchangeConfig {
            export_lbd: ExportLbd {
                floor: 1,
                initial: 3,
                ceiling: 6,
            },
            ..ExchangeConfig::default()
        };

        // Tightening: imports that never propagate. Each foreign binary
        // contains the root-false literal ¬x1, so it simplifies to a root
        // unit on arrival — counted as an import, enqueued without a
        // clause reference, and therefore never an imported *reason*.
        let ctx = SharedContext::new(2, cfg);
        let h0 = ctx.handle(0);
        let mut s = Solver::new();
        s.reserve_vars(60);
        s.add_clause([lit(1)]);
        s.set_clause_exchange(Some(ctx.handle(1)));
        assert_eq!(s.adapted_export_lbd(), 3, "starts at the initial bound");
        let mut next_var = 2i64;
        let mut useless_batch = |s: &mut Solver| {
            for _ in 0..16 {
                assert!(h0.export(&[lit(-1), lit(next_var)], 2, None));
                next_var += 1;
            }
            assert!(s.solve().is_sat());
        };
        useless_batch(&mut s);
        assert_eq!(s.adapted_export_lbd(), 2, "useless imports tighten");
        useless_batch(&mut s);
        assert_eq!(s.adapted_export_lbd(), 1);
        useless_batch(&mut s);
        assert_eq!(s.adapted_export_lbd(), 1, "clamped at the floor");
        assert_eq!(s.stats().adapted_export_lbd, 1);

        // Loosening: imports that fire as reasons. Under the assumption
        // x1, every imported binary ¬x1 ∨ b_k propagates b_k with the
        // imported clause as reason, so each window sees a high
        // usefulness rate once the previous batch has propagated.
        let ctx = SharedContext::new(2, cfg);
        let h0 = ctx.handle(0);
        let mut s = Solver::new();
        s.reserve_vars(120);
        s.set_clause_exchange(Some(ctx.handle(1)));
        let mut next_var = 2i64;
        let mut useful_batch = |s: &mut Solver| {
            for _ in 0..16 {
                assert!(h0.export(&[lit(-1), lit(next_var)], 2, None));
                next_var += 1;
            }
            assert!(s.solve_with_assumptions(&[lit(1)]).is_sat());
            s.adapted_export_lbd()
        };
        // The first batch adapts before anything has propagated (rate 0),
        // tightening once; from then on every window is all-useful.
        assert_eq!(useful_batch(&mut s), 2);
        assert_eq!(useful_batch(&mut s), 3, "useful imports loosen");
        assert_eq!(useful_batch(&mut s), 4);
        assert_eq!(useful_batch(&mut s), 5);
        assert_eq!(useful_batch(&mut s), 6);
        assert_eq!(useful_batch(&mut s), 6, "clamped at the ceiling");
        assert_eq!(s.stats().adapted_export_lbd, 6);
    }

    #[test]
    fn pinned_export_lbd_never_moves() {
        use crate::shared::{ExchangeConfig, SharedContext};
        let ctx = SharedContext::new(
            2,
            ExchangeConfig {
                export_lbd: ExportLbd::fixed(4),
                ..ExchangeConfig::default()
            },
        );
        let h0 = ctx.handle(0);
        let mut s = Solver::new();
        s.reserve_vars(40);
        s.add_clause([lit(1)]);
        s.set_clause_exchange(Some(ctx.handle(1)));
        for k in 2..=33i64 {
            assert!(h0.export(&[lit(-1), lit(k)], 2, None));
        }
        assert!(s.solve().is_sat());
        assert_eq!(s.adapted_export_lbd(), 4, "fixed bounds pin the filter");
    }

    #[test]
    fn exchange_imports_foreign_units_and_binaries() {
        use crate::shared::{ExchangeConfig, SharedContext};
        let ctx = SharedContext::new(2, ExchangeConfig::default());
        // Lane 0 "learns" x0 and (x1 ∨ x2) out of band.
        ctx.handle(0).export(&[lit(1)], 1, None);
        ctx.handle(0).export(&[lit(2), lit(3)], 2, None);
        // Lane 1's formula: ¬x1 ∨ ¬x2 — alone SAT with everything free.
        let mut s = Solver::new();
        s.reserve_vars(3);
        s.add_clause([lit(-2), lit(-3)]);
        s.set_clause_exchange(Some(ctx.handle(1)));
        let SolveResult::Sat(m) = s.solve() else {
            panic!()
        };
        // The imported unit forces x0; the imported binary + own clause
        // force exactly one of x1/x2.
        assert!(m.lit_value(lit(1)));
        assert!(m.lit_value(lit(2)) ^ m.lit_value(lit(3)));
        assert_eq!(s.stats().imported_clauses, 2);
        assert_eq!(s.learnt_count(), 1, "the binary joins the learnt db");
    }

    #[test]
    fn contradictory_imports_prove_unsat() {
        use crate::shared::{ExchangeConfig, SharedContext};
        let ctx = SharedContext::new(2, ExchangeConfig::default());
        ctx.handle(0).export(&[lit(1)], 1, None);
        ctx.handle(0).export(&[lit(-1)], 1, None);
        let mut s = Solver::new();
        s.reserve_vars(1);
        s.set_clause_exchange(Some(ctx.handle(1)));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn bound_tagged_imports_defer_until_promotion() {
        use crate::shared::{ExchangeConfig, SharedContext};
        let ctx = SharedContext::new(2, ExchangeConfig::default());
        // A unit derived under "weight < 5".
        ctx.handle(0).export(&[lit(1)], 1, Some(5));
        let mut s = Solver::new();
        s.reserve_vars(1);
        s.set_clause_exchange(Some(ctx.handle(1)));
        // Unbounded solve: the clause must be parked, not applied.
        assert!(s.solve().is_sat());
        assert_eq!(s.stats().imported_clauses, 0);
        // A *looser* own bound still defers.
        s.set_bound_tag(Some(9));
        assert!(s.solve().is_sat());
        assert_eq!(s.stats().imported_clauses, 0);
        // Once our bound is at least as tight, the clause is promoted.
        s.set_bound_tag(Some(5));
        let SolveResult::Sat(m) = s.solve() else {
            panic!()
        };
        assert!(m.lit_value(lit(1)));
        assert_eq!(s.stats().imported_clauses, 1);
        assert_eq!(s.stats().promoted_clauses, 1);
    }

    #[test]
    fn lanes_racing_one_unsat_instance_share_clauses() {
        use crate::restart::FixedRestarts;
        use crate::shared::{ExchangeConfig, SharedContext};
        // Two solvers on one PHP instance, sequentially: lane 0 refutes it
        // and exports its short learnt clauses; lane 1 then imports them
        // and must reach the same verdict (typically in fewer conflicts,
        // but only the verdict is asserted — determinism is not).
        let cnf = pigeonhole(7, 6);
        let ctx = SharedContext::new(
            2,
            ExchangeConfig {
                export_lbd: ExportLbd::fixed(u32::MAX),
                max_shared_len: usize::MAX,
                capacity_per_lane: 1 << 14,
            },
        );
        let mut a = Solver::from_cnf(&cnf);
        a.set_clause_exchange(Some(ctx.handle(0)));
        a.set_restart_policy(Box::new(FixedRestarts::new(16)));
        assert!(a.solve().is_unsat());
        assert!(
            a.stats().exported_clauses > 0,
            "refuting PHP(7,6) must learn exportable clauses"
        );
        let mut b = Solver::from_cnf(&cnf);
        b.set_clause_exchange(Some(ctx.handle(1)));
        assert!(b.solve().is_unsat());
        assert!(b.stats().imported_clauses > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        // Clause exchange preserves satisfiability: a solver importing
        // another lane's exported clauses reaches the same SAT/UNSAT
        // verdict as a solo solver on the same random CNF, and its models
        // still satisfy the formula.
        #[test]
        fn prop_clause_exchange_preserves_satisfiability(
            nvars in 3usize..12,
            clauses in proptest::collection::vec(
                proptest::collection::vec((0usize..12, any::<bool>()), 1..4), 1..40)
        ) {
            use crate::restart::FixedRestarts;
            use crate::shared::{ExchangeConfig, SharedContext};
            let mut cnf = Cnf::new();
            cnf.new_vars(nvars);
            for c in &clauses {
                cnf.add_clause(c.iter().map(|&(v, pol)| Var::new(v % nvars).lit(pol)));
            }
            let solo = Solver::from_cnf(&cnf).solve();

            // Share everything: no LBD/length filter, aggressive restarts
            // so the exporter drains/learns at every opportunity.
            let ctx = SharedContext::new(2, ExchangeConfig {
                export_lbd: ExportLbd::fixed(u32::MAX),
                max_shared_len: usize::MAX,
                capacity_per_lane: 4096,
            });
            let mut exporter = Solver::from_cnf(&cnf);
            exporter.set_clause_exchange(Some(ctx.handle(0)));
            exporter.set_restart_policy(Box::new(FixedRestarts::new(1)));
            let exporter_verdict = exporter.solve();
            let mut importer = Solver::from_cnf(&cnf);
            importer.set_clause_exchange(Some(ctx.handle(1)));
            let importer_verdict = importer.solve();

            for (label, verdict) in [("exporter", &exporter_verdict), ("importer", &importer_verdict)] {
                match (verdict, &solo) {
                    (SolveResult::Sat(m), SolveResult::Sat(_)) => {
                        prop_assert!(cnf.eval(&m.values()), "{label}: bad model");
                    }
                    (SolveResult::Unsat, SolveResult::Unsat) => {}
                    other => prop_assert!(false, "{label}: verdict mismatch {other:?}"),
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_agrees_with_brute_force(
            nvars in 3usize..10,
            clauses in proptest::collection::vec(
                proptest::collection::vec((0usize..10, any::<bool>()), 1..4), 0..30)
        ) {
            let mut cnf = Cnf::new();
            cnf.new_vars(nvars);
            for c in &clauses {
                cnf.add_clause(c.iter().map(|&(v, pol)| Var::new(v % nvars).lit(pol)));
            }
            let result = Solver::from_cnf(&cnf).solve();
            let brute = (0u64..1 << nvars).any(|mask| {
                let assignment: Vec<bool> = (0..nvars).map(|i| mask >> i & 1 == 1).collect();
                cnf.eval(&assignment)
            });
            match result {
                SolveResult::Sat(m) => {
                    prop_assert!(cnf.eval(&m.values()));
                    prop_assert!(brute);
                }
                SolveResult::Unsat => prop_assert!(!brute),
                SolveResult::Unknown | SolveResult::Interrupted => {
                    prop_assert!(false, "unexpected Unknown/Interrupted")
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        // Differential test of the arena under constant GC pressure: with
        // the reduce-db trigger pinned near zero and aggressive restarts,
        // the solver collects the arena many times per solve, and must
        // still agree with brute force (and keep its references intact).
        #[test]
        fn prop_arena_gc_preserves_verdicts(
            nvars in 4usize..11,
            clauses in proptest::collection::vec(
                proptest::collection::vec((0usize..11, any::<bool>()), 1..4), 5..60)
        ) {
            use crate::restart::FixedRestarts;
            let mut cnf = Cnf::new();
            cnf.new_vars(nvars);
            for c in &clauses {
                cnf.add_clause(c.iter().map(|&(v, pol)| Var::new(v % nvars).lit(pol)));
            }
            let mut s = Solver::from_cnf(&cnf);
            s.set_max_learnts_for_test(4.0);
            s.set_restart_policy(Box::new(FixedRestarts::new(4)));
            let result = s.solve();
            s.check_integrity();
            let brute = (0u64..1 << nvars).any(|mask| {
                let assignment: Vec<bool> = (0..nvars).map(|i| mask >> i & 1 == 1).collect();
                cnf.eval(&assignment)
            });
            match result {
                SolveResult::Sat(m) => {
                    prop_assert!(cnf.eval(&m.values()), "bad model under GC pressure");
                    prop_assert!(brute);
                }
                SolveResult::Unsat => prop_assert!(!brute, "false UNSAT under GC pressure"),
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }
}

//! Learnt-clause exchange between cooperating portfolio solvers.
//!
//! A [`SharedContext`] connects the diversified CDCL lanes of one portfolio
//! race over the *same* CNF (identical variable numbering). Each lane
//! exports its short/low-LBD learnt clauses — and every unit and binary —
//! into the other lanes' bounded, lock-free inboxes, and drains foreign
//! clauses at its restart boundaries. A clause one lane paid conflicts to
//! derive prunes the same dead subtree in every other lane for free; for
//! the Fermihedral weight descent this is the classic portfolio-SAT win on
//! the Hamiltonian-dependent instances (PAPER.md §5).
//!
//! # Bound tags
//!
//! Descent lanes solve under a *weight-bound assumption* (`weight < k`).
//! Clauses learnt by this solver are derived by resolution over database
//! clauses only — assumptions enter as decisions, never as resolution
//! inputs — so every export is implied by the shared formula and is sound
//! for any importer. Exports still carry the bound their producer was
//! assuming ([`SharedClause::bound_tag`]) and an importer defers clauses
//! tagged with a *looser* bound than its own until its descent catches up
//! (a "promotion"): belt-and-braces against any future learning scheme
//! whose derivations do absorb assumption literals, and a useful filter —
//! a clause conditioned on `weight < k` can only propagate once the
//! importer assumes at most `k` anyway.
//!
//! # Lock-freedom and loss tolerance
//!
//! Each lane owns a fixed ring of [`AtomicPtr`] slots. Producers claim a
//! slot index with a relaxed `fetch_add` and `swap` their clause in;
//! consumers `swap` slots out. Every transfer of a heap clause is a single
//! atomic pointer swap, so the exchange never blocks a solver thread and
//! ownership is unambiguous (whoever swaps a non-null pointer out owns
//! it). A full inbox overwrites the oldest entry — clause sharing is an
//! optimization, never a correctness dependency, so losing an overwritten
//! clause only costs the importer the conflicts to re-derive it.

use crate::types::Lit;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Bounds for a lane's adaptive export-LBD threshold.
///
/// Each solver starts exporting clauses with glue at most `initial` and
/// then adapts Glucose-style: when its imported clauses keep firing as
/// propagation reasons (sharing is pulling its weight) the lane loosens
/// its threshold toward `ceiling` to ship more; when imports sit unused
/// it tightens toward `floor` to ship only the best. Portfolio lanes
/// diversify by starting from different bounds
/// (`engine::Strategy::SatDescent` carries them per lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportLbd {
    /// The controller never tightens below this glue.
    pub floor: u32,
    /// Starting export threshold.
    pub initial: u32,
    /// The controller never loosens above this glue.
    pub ceiling: u32,
}

impl Default for ExportLbd {
    fn default() -> Self {
        ExportLbd {
            floor: 2,
            initial: 4,
            ceiling: 8,
        }
    }
}

impl ExportLbd {
    /// A degenerate range: the threshold is pinned to `threshold` and the
    /// controller has no room to adapt (the pre-adaptive behaviour).
    pub fn fixed(threshold: u32) -> ExportLbd {
        ExportLbd {
            floor: threshold,
            initial: threshold,
            ceiling: threshold,
        }
    }

    /// The bounds with `floor ≤ initial ≤ ceiling` enforced.
    pub fn normalized(self) -> ExportLbd {
        let ceiling = self.ceiling.max(self.floor);
        ExportLbd {
            floor: self.floor,
            initial: self.initial.clamp(self.floor, ceiling),
            ceiling,
        }
    }
}

/// Eligibility and capacity knobs for a [`SharedContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeConfig {
    /// Per-lane adaptive export-threshold bounds: clauses with LBD (glue)
    /// at most the lane's *current* threshold are exported (units and
    /// binaries always are). Replaces the old hard-coded `lbd_threshold`.
    pub export_lbd: ExportLbd,
    /// Clauses longer than this are never exported, whatever their LBD.
    pub max_shared_len: usize,
    /// Ring-buffer slots per lane inbox; a full inbox overwrites oldest.
    pub capacity_per_lane: usize,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            export_lbd: ExportLbd::default(),
            max_shared_len: 32,
            capacity_per_lane: 512,
        }
    }
}

/// A clause in flight between lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedClause {
    /// The literals (in the shared variable numbering).
    pub lits: Vec<Lit>,
    /// The producer's LBD at learn time (importers file it under this
    /// glue for database-reduction ranking).
    pub lbd: u32,
    /// The weight bound the producer was assuming, if any; see the module
    /// docs. `None` = unconditional.
    pub bound_tag: Option<usize>,
    /// Producer lane index (importers skip nothing by it today; kept for
    /// diagnostics and future cross-process bridging).
    pub source: usize,
}

/// Per-lane traffic counters (snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExchangeCounters {
    /// Clauses this lane exported (once per clause, not per recipient).
    pub exported: u64,
    /// Clauses overwritten unread in this lane's inbox (inbox full).
    pub overwritten: u64,
}

struct LaneInbox {
    slots: Box<[AtomicPtr<SharedClause>]>,
    tail: AtomicUsize,
}

impl LaneInbox {
    fn new(capacity: usize) -> LaneInbox {
        LaneInbox {
            slots: (0..capacity.max(1)).map(|_| AtomicPtr::default()).collect(),
            tail: AtomicUsize::new(0),
        }
    }

    /// Publishes a clause, returning `true` when it displaced an unread one.
    fn push(&self, clause: SharedClause) -> bool {
        let idx = self.tail.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let fresh = Box::into_raw(Box::new(clause));
        let old = self.slots[idx].swap(fresh, Ordering::AcqRel);
        if old.is_null() {
            false
        } else {
            // SAFETY: a non-null pointer swapped out of a slot is owned
            // exclusively by this thread (all slot access is by swap).
            drop(unsafe { Box::from_raw(old) });
            true
        }
    }

    /// Takes every pending clause (order unspecified).
    fn drain_into(&self, out: &mut Vec<SharedClause>) {
        for slot in self.slots.iter() {
            let ptr = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
            if !ptr.is_null() {
                // SAFETY: as in `push` — the swap transferred ownership.
                out.push(*unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

impl Drop for LaneInbox {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let ptr = std::mem::replace(slot.get_mut(), std::ptr::null_mut());
            if !ptr.is_null() {
                // SAFETY: `&mut self` — no concurrent access remains.
                drop(unsafe { Box::from_raw(ptr) });
            }
        }
    }
}

struct ContextInner {
    config: ExchangeConfig,
    lanes: Vec<LaneInbox>,
    exported: Vec<AtomicU64>,
    overwritten: Vec<AtomicU64>,
}

impl std::fmt::Debug for ContextInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedContext")
            .field("config", &self.config)
            .field("num_lanes", &self.lanes.len())
            .finish()
    }
}

/// The clause-exchange hub of one portfolio race. Cloneable; all clones
/// share the same inboxes. See the module docs.
///
/// # Example
///
/// ```
/// use sat::shared::{ExchangeConfig, SharedContext};
/// use sat::Var;
///
/// let ctx = SharedContext::new(2, ExchangeConfig::default());
/// let (a, b) = (ctx.handle(0), ctx.handle(1));
/// // Lane 0 learns a binary clause and exports it; lane 1 receives it.
/// let clause = [Var::new(0).positive(), Var::new(1).negative()];
/// assert!(a.export(&clause, 2, None));
/// let mut got = Vec::new();
/// b.drain_into(&mut got);
/// assert_eq!(got.len(), 1);
/// assert_eq!(got[0].lits, clause);
/// ```
#[derive(Debug, Clone)]
pub struct SharedContext {
    inner: Arc<ContextInner>,
}

impl SharedContext {
    /// A context for `num_lanes` cooperating solvers.
    pub fn new(num_lanes: usize, config: ExchangeConfig) -> SharedContext {
        SharedContext {
            inner: Arc::new(ContextInner {
                config,
                lanes: (0..num_lanes)
                    .map(|_| LaneInbox::new(config.capacity_per_lane))
                    .collect(),
                exported: (0..num_lanes).map(|_| AtomicU64::new(0)).collect(),
                overwritten: (0..num_lanes).map(|_| AtomicU64::new(0)).collect(),
            }),
        }
    }

    /// A context for `local_lanes` solvers plus one *bridge lane* that
    /// relays clauses to and from other processes (ROADMAP multi-process
    /// sharding). The bridge lane is an ordinary lane to the exchange —
    /// local exports land in its inbox like any peer's — but no solver
    /// drains it; the returned [`RemoteExchange`] does, and feeds remote
    /// clauses back into the local lanes. Give solvers the handles
    /// `0..local_lanes` only.
    pub fn with_bridge(
        local_lanes: usize,
        config: ExchangeConfig,
    ) -> (SharedContext, RemoteExchange) {
        let ctx = SharedContext::new(local_lanes + 1, config);
        let remote = RemoteExchange {
            inner: ctx.inner.clone(),
            bridge: local_lanes,
            injected: Arc::new(AtomicU64::new(0)),
            var_limit: Arc::new(AtomicUsize::new(0)),
        };
        (ctx, remote)
    }

    /// Number of participating lanes.
    pub fn num_lanes(&self) -> usize {
        self.inner.lanes.len()
    }

    /// The eligibility/capacity configuration.
    pub fn config(&self) -> ExchangeConfig {
        self.inner.config
    }

    /// The handle lane `lane` plugs into its solver
    /// ([`Solver::set_clause_exchange`](crate::Solver::set_clause_exchange)).
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn handle(&self, lane: usize) -> LaneHandle {
        assert!(lane < self.num_lanes(), "lane {lane} out of range");
        LaneHandle {
            inner: self.inner.clone(),
            lane,
        }
    }

    /// Traffic counters of one lane.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn counters(&self, lane: usize) -> ExchangeCounters {
        ExchangeCounters {
            exported: self.inner.exported[lane].load(Ordering::Relaxed),
            overwritten: self.inner.overwritten[lane].load(Ordering::Relaxed),
        }
    }
}

/// One lane's membership in a [`SharedContext`]: exports go to every
/// *other* lane, drains read this lane's own inbox.
#[derive(Debug, Clone)]
pub struct LaneHandle {
    inner: Arc<ContextInner>,
    lane: usize,
}

impl LaneHandle {
    /// This handle's lane index.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// The context's export-LBD bounds (floor/initial/ceiling), which an
    /// adaptive solver adopts when it connects.
    pub fn export_bounds(&self) -> ExportLbd {
        self.inner.config.export_lbd
    }

    /// Whether a clause of this size and glue qualifies for export under
    /// the configured *initial* threshold (adaptive lanes pass their
    /// current threshold to [`eligible_at`](Self::eligible_at) instead).
    pub fn eligible(&self, len: usize, lbd: u32) -> bool {
        self.eligible_at(len, lbd, self.inner.config.export_lbd.initial)
    }

    /// Whether a clause of this size and glue qualifies for export under
    /// a caller-supplied LBD threshold.
    pub fn eligible_at(&self, len: usize, lbd: u32, lbd_threshold: u32) -> bool {
        let cfg = &self.inner.config;
        len >= 1 && (len <= 2 || (lbd <= lbd_threshold && len <= cfg.max_shared_len))
    }

    /// Exports a learnt clause to every other lane (a copy per recipient)
    /// under the configured initial threshold. Returns `false` — without
    /// publishing — when the clause is ineligible or there are no peers.
    pub fn export(&self, lits: &[Lit], lbd: u32, bound_tag: Option<usize>) -> bool {
        self.export_at(lits, lbd, bound_tag, self.inner.config.export_lbd.initial)
    }

    /// Exports under a caller-supplied LBD threshold — the entry point for
    /// solvers running the adaptive controller, which own their current
    /// threshold and move it within the configured
    /// [`ExportLbd`] bounds.
    pub fn export_at(
        &self,
        lits: &[Lit],
        lbd: u32,
        bound_tag: Option<usize>,
        lbd_threshold: u32,
    ) -> bool {
        if !self.eligible_at(lits.len(), lbd, lbd_threshold) || self.inner.lanes.len() < 2 {
            return false;
        }
        for (peer, inbox) in self.inner.lanes.iter().enumerate() {
            if peer == self.lane {
                continue;
            }
            let displaced = inbox.push(SharedClause {
                lits: lits.to_vec(),
                lbd,
                bound_tag,
                source: self.lane,
            });
            if displaced {
                self.inner.overwritten[peer].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.inner.exported[self.lane].fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Takes every clause pending in this lane's inbox.
    pub fn drain_into(&self, out: &mut Vec<SharedClause>) {
        self.inner.lanes[self.lane].drain_into(out);
    }
}

/// The bridge end of a [`SharedContext::with_bridge`] context: the
/// adapter a cross-process bridge thread uses to move clauses over the
/// existing inbox machinery.
///
/// *Outgoing*: every local lane's exports land in the bridge lane's inbox
/// (the bridge is just another peer); [`drain_outgoing`] takes them for
/// serialization. *Incoming*: [`inject`] files a remote clause into every
/// local lane's inbox, tagged with the bridge lane as its `source`.
/// Injected clauses never enter the bridge's own inbox, so nothing a
/// bridge receives can be drained back out of it — the in-process half of
/// the no-echo guarantee (the coordinator's shard-indexed forwarding is
/// the cross-process half).
///
/// [`drain_outgoing`]: RemoteExchange::drain_outgoing
/// [`inject`]: RemoteExchange::inject
#[derive(Debug, Clone)]
pub struct RemoteExchange {
    inner: Arc<ContextInner>,
    bridge: usize,
    injected: Arc<AtomicU64>,
    /// Exclusive upper bound on variable indices accepted by `inject`
    /// (0 = not configured). See [`set_var_limit`].
    ///
    /// [`set_var_limit`]: RemoteExchange::set_var_limit
    var_limit: Arc<AtomicUsize>,
}

impl RemoteExchange {
    /// The bridge's lane index (= the number of local lanes). Remote
    /// clauses carry it as their `source`.
    pub fn bridge_lane(&self) -> usize {
        self.bridge
    }

    /// Declares the shared formula's variable count. Once set,
    /// [`inject`](RemoteExchange::inject) rejects any clause referencing
    /// a variable at or above it: remote clauses are only meaningful in
    /// the shared numbering, and a corrupt frame with a huge literal
    /// would otherwise make every importing solver allocate watch/
    /// assignment state for billions of variables — one bad peer taking
    /// down every healthy worker.
    pub fn set_var_limit(&self, num_vars: usize) {
        self.var_limit.store(num_vars, Ordering::Relaxed);
    }

    /// Takes every clause local lanes have exported since the last drain,
    /// for forwarding to other processes.
    pub fn drain_outgoing(&self, out: &mut Vec<SharedClause>) {
        self.inner.lanes[self.bridge].drain_into(out);
    }

    /// Delivers a clause received from another process to every local
    /// lane. Applies the local eligibility filter at the configured
    /// export-LBD *ceiling* — the loosest threshold any adaptive remote
    /// lane could legitimately have been exporting under — so a
    /// misconfigured peer cannot flood the lanes with clauses no lane
    /// would ever export. Returns `false` without publishing when the
    /// clause fails the filter.
    pub fn inject(&self, lits: &[Lit], lbd: u32, bound_tag: Option<usize>) -> bool {
        let cfg = &self.inner.config;
        let len = lits.len();
        let eligible =
            len >= 1 && (len <= 2 || (lbd <= cfg.export_lbd.ceiling && len <= cfg.max_shared_len));
        if !eligible {
            return false;
        }
        let var_limit = self.var_limit.load(Ordering::Relaxed);
        if var_limit != 0 && lits.iter().any(|l| l.var().index() >= var_limit) {
            return false;
        }
        for (lane, inbox) in self.inner.lanes.iter().enumerate() {
            if lane == self.bridge {
                continue;
            }
            let displaced = inbox.push(SharedClause {
                lits: lits.to_vec(),
                lbd,
                bound_tag,
                source: self.bridge,
            });
            if displaced {
                self.inner.overwritten[lane].fetch_add(1, Ordering::Relaxed);
            }
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of clauses accepted by [`inject`](RemoteExchange::inject)
    /// over this exchange's lifetime.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lits(ids: &[i64]) -> Vec<Lit> {
        ids.iter().map(|&i| Lit::from_dimacs(i)).collect()
    }

    #[test]
    fn export_reaches_every_peer_but_not_self() {
        let ctx = SharedContext::new(3, ExchangeConfig::default());
        let a = ctx.handle(0);
        assert!(a.export(&lits(&[1, -2]), 2, None));
        for (lane, expect) in [(0, 0), (1, 1), (2, 1)] {
            let mut got = Vec::new();
            ctx.handle(lane).drain_into(&mut got);
            assert_eq!(got.len(), expect, "lane {lane}");
            for c in &got {
                assert_eq!(c.source, 0);
            }
        }
        assert_eq!(ctx.counters(0).exported, 1);
    }

    #[test]
    fn eligibility_rules() {
        let ctx = SharedContext::new(
            2,
            ExchangeConfig {
                export_lbd: ExportLbd::fixed(3),
                max_shared_len: 4,
                capacity_per_lane: 8,
            },
        );
        let h = ctx.handle(0);
        // Units and binaries always pass, whatever the LBD.
        assert!(h.eligible(1, 99));
        assert!(h.eligible(2, 99));
        // Longer clauses need low LBD and bounded length.
        assert!(h.eligible(3, 3));
        assert!(!h.eligible(3, 4));
        assert!(!h.eligible(5, 1));
        // Empty clauses are never exchanged.
        assert!(!h.eligible(0, 0));
        // An adaptive lane's own (looser/tighter) threshold wins.
        assert!(h.eligible_at(3, 4, 4));
        assert!(!h.eligible_at(3, 3, 2));
    }

    #[test]
    fn export_lbd_bounds_normalize() {
        let b = ExportLbd {
            floor: 3,
            initial: 9,
            ceiling: 6,
        }
        .normalized();
        assert_eq!((b.floor, b.initial, b.ceiling), (3, 6, 6));
        let f = ExportLbd::fixed(5);
        assert_eq!((f.floor, f.initial, f.ceiling), (5, 5, 5));
    }

    #[test]
    fn export_at_overrides_config_threshold() {
        let ctx = SharedContext::new(
            2,
            ExchangeConfig {
                export_lbd: ExportLbd {
                    floor: 2,
                    initial: 3,
                    ceiling: 8,
                },
                ..ExchangeConfig::default()
            },
        );
        let h = ctx.handle(0);
        assert_eq!(h.export_bounds().ceiling, 8);
        // LBD 5 fails the initial threshold but passes a loosened one.
        let c = lits(&[1, 2, 3]);
        assert!(!h.export(&c, 5, None));
        assert!(h.export_at(&c, 5, None, 6));
        let mut got = Vec::new();
        ctx.handle(1).drain_into(&mut got);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].lbd, 5);
    }

    #[test]
    fn solo_context_exports_nothing() {
        let ctx = SharedContext::new(1, ExchangeConfig::default());
        assert!(!ctx.handle(0).export(&lits(&[1]), 1, None));
        assert_eq!(ctx.counters(0).exported, 0);
    }

    #[test]
    fn full_inbox_overwrites_oldest() {
        let ctx = SharedContext::new(
            2,
            ExchangeConfig {
                capacity_per_lane: 2,
                ..ExchangeConfig::default()
            },
        );
        let a = ctx.handle(0);
        for i in 1..=5i64 {
            assert!(a.export(&lits(&[i]), 1, None));
        }
        let mut got = Vec::new();
        ctx.handle(1).drain_into(&mut got);
        assert_eq!(got.len(), 2, "inbox is bounded");
        // The survivors are the newest two exports.
        let mut survivors: Vec<i64> = got.iter().map(|c| c.lits[0].to_dimacs()).collect();
        survivors.sort_unstable();
        assert_eq!(survivors, vec![4, 5]);
        assert_eq!(ctx.counters(1).overwritten, 3);
    }

    #[test]
    fn bound_tags_travel_with_the_clause() {
        let ctx = SharedContext::new(2, ExchangeConfig::default());
        ctx.handle(0).export(&lits(&[1, 2]), 2, Some(17));
        let mut got = Vec::new();
        ctx.handle(1).drain_into(&mut got);
        assert_eq!(got[0].bound_tag, Some(17));
    }

    #[test]
    fn drain_is_destructive() {
        let ctx = SharedContext::new(2, ExchangeConfig::default());
        ctx.handle(0).export(&lits(&[1, 2]), 2, None);
        let b = ctx.handle(1);
        let mut first = Vec::new();
        b.drain_into(&mut first);
        assert_eq!(first.len(), 1);
        let mut second = Vec::new();
        b.drain_into(&mut second);
        assert!(second.is_empty());
    }

    #[test]
    fn bridge_relays_without_echo() {
        let (ctx, remote) = SharedContext::with_bridge(2, ExchangeConfig::default());
        assert_eq!(remote.bridge_lane(), 2);

        // A local export reaches the other local lane AND the bridge.
        ctx.handle(0).export(&lits(&[1, -2]), 2, None);
        let mut outgoing = Vec::new();
        remote.drain_outgoing(&mut outgoing);
        assert_eq!(outgoing.len(), 1);
        assert_eq!(outgoing[0].source, 0);
        let mut peer = Vec::new();
        ctx.handle(1).drain_into(&mut peer);
        assert_eq!(peer.len(), 1);

        // An injected remote clause reaches every local lane, tagged with
        // the bridge as its source — and never the bridge inbox itself.
        assert!(remote.inject(&lits(&[3, 4]), 2, Some(9)));
        assert_eq!(remote.injected(), 1);
        for lane in 0..2 {
            let mut got = Vec::new();
            ctx.handle(lane).drain_into(&mut got);
            let injected: Vec<_> = got.iter().filter(|c| c.source == 2).collect();
            assert_eq!(injected.len(), 1, "lane {lane}");
            assert_eq!(injected[0].bound_tag, Some(9));
        }
        let mut echo = Vec::new();
        remote.drain_outgoing(&mut echo);
        assert!(echo.is_empty(), "injected clauses must not echo back out");
    }

    #[test]
    fn bridge_inject_applies_the_eligibility_filter() {
        let (_ctx, remote) = SharedContext::with_bridge(
            1,
            ExchangeConfig {
                export_lbd: ExportLbd::fixed(2),
                max_shared_len: 4,
                capacity_per_lane: 8,
            },
        );
        assert!(!remote.inject(&lits(&[1, 2, 3]), 99, None), "high LBD");
        assert!(!remote.inject(&lits(&[1, 2, 3, 4, 5]), 1, None), "too long");
        assert!(!remote.inject(&[], 0, None), "empty");
        assert!(remote.inject(&lits(&[1, 2]), 99, None), "binaries always");
        assert_eq!(remote.injected(), 1);
    }

    #[test]
    fn bridge_inject_rejects_out_of_range_variables() {
        // A corrupt remote frame with a huge literal must not reach the
        // lanes — importing it would make every solver reserve variable
        // state up to that index.
        let (_ctx, remote) = SharedContext::with_bridge(1, ExchangeConfig::default());
        // Before the limit is declared, anything in-range goes through.
        assert!(remote.inject(&lits(&[1, 2]), 1, None));
        remote.set_var_limit(10);
        assert!(remote.inject(&lits(&[9, -10]), 1, None), "vars 8,9 < 10");
        let huge = vec![Var::new(2_000_000_000).positive()];
        assert!(!remote.inject(&huge, 1, None), "var 2e9 >= limit 10");
        assert!(!remote.inject(&lits(&[11]), 1, None), "var 10 >= limit 10");
        assert_eq!(remote.injected(), 2);
    }

    #[test]
    fn dropping_the_context_frees_pending_clauses() {
        // Exercises LaneInbox::drop with unread entries (run under Miri or
        // a leak checker to be meaningful; here it asserts no panic).
        let ctx = SharedContext::new(2, ExchangeConfig::default());
        for i in 1..=10i64 {
            ctx.handle(0).export(&lits(&[i, -i - 1]), 2, None);
        }
        drop(ctx);
    }

    #[test]
    fn concurrent_producers_and_consumer_agree_on_ownership() {
        // 4 producer threads flood one consumer lane while it drains;
        // every drained clause must be intact (lits match its seed).
        let ctx = SharedContext::new(5, ExchangeConfig::default());
        let (total_sent, mut received) = std::thread::scope(|scope| {
            let mut senders = Vec::new();
            for lane in 1..5usize {
                let h = ctx.handle(lane);
                senders.push(scope.spawn(move || {
                    let mut sent = 0u64;
                    for round in 0..500i64 {
                        let a = Var::new((round % 40) as usize).positive();
                        let b = Var::new(((round + lane as i64) % 40 + 1) as usize).negative();
                        if h.export(&[a, b], 2, Some(round as usize)) {
                            sent += 1;
                        }
                    }
                    sent
                }));
            }
            let consumer = ctx.handle(0);
            let mut received = 0u64;
            let mut buf = Vec::new();
            for _ in 0..200 {
                consumer.drain_into(&mut buf);
                for c in buf.drain(..) {
                    assert_eq!(c.lits.len(), 2);
                    assert!(c.source >= 1 && c.source < 5);
                    received += 1;
                }
                std::thread::yield_now();
            }
            let sent = senders.into_iter().map(|s| s.join().unwrap()).sum::<u64>();
            (sent, received)
        });
        // Everything sent is received, still pending, or counted as
        // overwritten (conservation — nothing vanishes, nothing is forged).
        let mut leftover = Vec::new();
        ctx.handle(0).drain_into(&mut leftover);
        received += leftover.len() as u64;
        let overwritten = ctx.counters(0).overwritten;
        assert_eq!(total_sent, 4 * 500);
        assert_eq!(
            received + overwritten,
            total_sent,
            "received {received} + overwritten {overwritten} != sent {total_sent}"
        );
    }
}

//! DIMACS CNF reading and writing.
//!
//! The standard interchange format for SAT instances. Fermihedral instances
//! exported here can be cross-checked with external solvers (Kissat,
//! CaDiCaL), mirroring the paper's toolchain.

use crate::cnf::Cnf;
use crate::types::Lit;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Error from [`parse`].
#[derive(Debug)]
pub enum DimacsError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Malformed content, with a human-readable description.
    Parse(String),
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::Io(e) => write!(f, "i/o error reading DIMACS: {e}"),
            DimacsError::Parse(msg) => write!(f, "invalid DIMACS: {msg}"),
        }
    }
}

impl std::error::Error for DimacsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DimacsError::Io(e) => Some(e),
            DimacsError::Parse(_) => None,
        }
    }
}

impl From<io::Error> for DimacsError {
    fn from(e: io::Error) -> Self {
        DimacsError::Io(e)
    }
}

/// Writes `cnf` in DIMACS format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use sat::{Cnf, dimacs};
///
/// let mut cnf = Cnf::new();
/// let a = cnf.new_var();
/// let b = cnf.new_var();
/// cnf.add_clause([a.positive(), b.negative()]);
/// let mut out = Vec::new();
/// dimacs::write(&cnf, &mut out)?;
/// assert_eq!(String::from_utf8(out).unwrap(), "p cnf 2 1\n1 -2 0\n");
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write(cnf: &Cnf, w: &mut impl Write) -> io::Result<()> {
    writeln!(w, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.clauses() {
        for lit in clause {
            write!(w, "{} ", lit.to_dimacs())?;
        }
        writeln!(w, "0")?;
    }
    Ok(())
}

/// Parses a DIMACS CNF file.
///
/// Comment lines (`c …`) are skipped; the `p cnf <vars> <clauses>` header is
/// required before any clause. Extra declared variables are allocated even
/// if unused.
///
/// # Errors
///
/// Returns [`DimacsError::Parse`] on malformed input and
/// [`DimacsError::Io`] on reader failure.
pub fn parse(r: impl BufRead) -> Result<Cnf, DimacsError> {
    let mut cnf = Cnf::new();
    let mut declared_vars: Option<usize> = None;
    let mut declared_clauses: Option<usize> = None;
    let mut current: Vec<Lit> = Vec::new();

    for line in r.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('p') {
            if declared_vars.is_some() {
                return Err(DimacsError::Parse("duplicate problem line".into()));
            }
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 3 || fields[0] != "cnf" {
                return Err(DimacsError::Parse(format!("bad problem line: {trimmed:?}")));
            }
            let nv: usize = fields[1]
                .parse()
                .map_err(|_| DimacsError::Parse(format!("bad var count {:?}", fields[1])))?;
            let nc: usize = fields[2]
                .parse()
                .map_err(|_| DimacsError::Parse(format!("bad clause count {:?}", fields[2])))?;
            cnf.new_vars(nv);
            declared_vars = Some(nv);
            declared_clauses = Some(nc);
            continue;
        }
        let Some(nv) = declared_vars else {
            return Err(DimacsError::Parse("clause before problem line".into()));
        };
        for tok in trimmed.split_whitespace() {
            let val: i64 = tok
                .parse()
                .map_err(|_| DimacsError::Parse(format!("bad literal {tok:?}")))?;
            if val == 0 {
                cnf.add_clause(current.drain(..));
            } else {
                if val.unsigned_abs() as usize > nv {
                    return Err(DimacsError::Parse(format!(
                        "literal {val} exceeds declared variable count {nv}"
                    )));
                }
                current.push(Lit::from_dimacs(val));
            }
        }
    }
    if !current.is_empty() {
        return Err(DimacsError::Parse(
            "unterminated clause at end of file".into(),
        ));
    }
    if let Some(nc) = declared_clauses {
        if cnf.num_clauses() != nc {
            return Err(DimacsError::Parse(format!(
                "declared {nc} clauses but found {}",
                cnf.num_clauses()
            )));
        }
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::Solver;
    use crate::types::Var;

    fn roundtrip(cnf: &Cnf) -> Cnf {
        let mut buf = Vec::new();
        write(cnf, &mut buf).unwrap();
        parse(buf.as_slice()).unwrap()
    }

    #[test]
    fn round_trip_preserves_clauses() {
        let mut cnf = Cnf::new();
        let vars = cnf.new_vars(4);
        cnf.add_clause([vars[0].positive(), vars[1].negative()]);
        cnf.add_clause([vars[2].positive(), vars[3].positive(), vars[0].negative()]);
        let back = roundtrip(&cnf);
        assert_eq!(back.num_vars(), 4);
        assert_eq!(back.clauses(), cnf.clauses());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "c a comment\n\np cnf 2 2\nc another\n1 2 0\n-1 0\n";
        let cnf = parse(text.as_bytes()).unwrap();
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        let result = Solver::from_cnf(&cnf).solve();
        let m = result.model().unwrap();
        assert!(!m.value(Var::new(0)));
        assert!(m.value(Var::new(1)));
    }

    #[test]
    fn multi_clause_single_line() {
        let text = "p cnf 2 2\n1 0 -2 0\n";
        let cnf = parse(text.as_bytes()).unwrap();
        assert_eq!(cnf.num_clauses(), 2);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(matches!(
            parse("1 2 0\n".as_bytes()),
            Err(DimacsError::Parse(_))
        ));
        assert!(matches!(
            parse("p cnf x 1\n1 0\n".as_bytes()),
            Err(DimacsError::Parse(_))
        ));
        assert!(matches!(
            parse("p cnf 1 1\n2 0\n".as_bytes()),
            Err(DimacsError::Parse(_))
        ));
        assert!(matches!(
            parse("p cnf 1 1\n1\n".as_bytes()),
            Err(DimacsError::Parse(_))
        ));
        assert!(matches!(
            parse("p cnf 1 2\n1 0\n".as_bytes()),
            Err(DimacsError::Parse(_))
        ));
        assert!(matches!(
            parse("p cnf 1 1\np cnf 1 1\n".as_bytes()),
            Err(DimacsError::Parse(_))
        ));
    }

    #[test]
    fn empty_clause_round_trips() {
        let mut cnf = Cnf::new();
        cnf.new_var();
        cnf.add_clause([]);
        let back = roundtrip(&cnf);
        assert_eq!(back.num_clauses(), 1);
        assert!(back.clauses()[0].is_empty());
        assert!(Solver::from_cnf(&back).solve().is_unsat());
    }
}

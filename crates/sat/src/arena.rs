//! Flat clause storage: one contiguous `u32` buffer for every clause.
//!
//! The previous layout stored each clause as its own heap-allocated
//! `Vec<Lit>` behind a `Vec<Clause>`, so every clause visit in propagation
//! chased a pointer to a separately allocated block. Here all clauses live
//! in a single arena of `u32` words, addressed by a [`CRef`] (a word
//! offset), so walking a clause is a linear scan of memory the prefetcher
//! already has in flight, and neighbouring clauses share cache lines.
//!
//! Record layout, starting at the clause's `CRef`:
//!
//! ```text
//! word 0   header: len << 3 | dead << 2 | imported << 1 | learnt
//! word 1   LBD (glue) of the clause
//! word 2   activity, stored as f32 bits
//! word 3.. the literals, one Lit::code() per word
//! ```
//!
//! Garbage collection is an in-place sliding compaction
//! ([`ClauseArena::collect`]): records marked dead are skipped, live
//! records are copied down (destinations never overtake sources, so the
//! copy is overlap-safe), and the caller receives a [`GcMap`] to remap
//! every outstanding `CRef` (watcher lists, reason references).

use crate::types::Lit;

/// Reference to a clause: the word offset of its record in the arena.
pub(crate) type CRef = u32;

const LEARNT_BIT: u32 = 1;
const IMPORTED_BIT: u32 = 1 << 1;
const DEAD_BIT: u32 = 1 << 2;
const LEN_SHIFT: u32 = 3;
/// Words of metadata before the literals of a record.
const HEADER_WORDS: usize = 3;

/// The flat clause store.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClauseArena {
    words: Vec<u32>,
    /// Words occupied by records marked dead (reclaimable by [`collect`]).
    wasted: usize,
}

impl ClauseArena {
    pub fn new() -> ClauseArena {
        ClauseArena::default()
    }

    /// Appends a record and returns its reference.
    pub fn alloc(&mut self, lits: &[Lit], learnt: bool, imported: bool, lbd: u32) -> CRef {
        debug_assert!(lits.len() >= 2, "unit/empty clauses never hit the arena");
        let cref = self.words.len() as CRef;
        let mut header = (lits.len() as u32) << LEN_SHIFT;
        if learnt {
            header |= LEARNT_BIT;
        }
        if imported {
            header |= IMPORTED_BIT;
        }
        self.words.reserve(HEADER_WORDS + lits.len());
        self.words.push(header);
        self.words.push(lbd);
        self.words.push(0f32.to_bits());
        self.words.extend(lits.iter().map(|l| l.code() as u32));
        cref
    }

    #[inline]
    pub fn len(&self, c: CRef) -> usize {
        (self.words[c as usize] >> LEN_SHIFT) as usize
    }

    #[inline]
    pub fn is_learnt(&self, c: CRef) -> bool {
        self.words[c as usize] & LEARNT_BIT != 0
    }

    #[inline]
    pub fn is_imported(&self, c: CRef) -> bool {
        self.words[c as usize] & IMPORTED_BIT != 0
    }

    #[inline]
    pub fn is_dead(&self, c: CRef) -> bool {
        self.words[c as usize] & DEAD_BIT != 0
    }

    #[inline]
    pub fn lbd(&self, c: CRef) -> u32 {
        self.words[c as usize + 1]
    }

    #[inline]
    pub fn activity(&self, c: CRef) -> f32 {
        f32::from_bits(self.words[c as usize + 2])
    }

    #[inline]
    pub fn set_activity(&mut self, c: CRef, a: f32) {
        self.words[c as usize + 2] = a.to_bits();
    }

    #[inline]
    pub fn lit(&self, c: CRef, i: usize) -> Lit {
        debug_assert!(i < self.len(c));
        Lit::from_code(self.words[c as usize + HEADER_WORDS + i] as usize)
    }

    #[cfg(test)]
    pub fn set_lit(&mut self, c: CRef, i: usize, l: Lit) {
        debug_assert!(i < self.len(c));
        self.words[c as usize + HEADER_WORDS + i] = l.code() as u32;
    }

    #[inline]
    pub fn swap_lits(&mut self, c: CRef, i: usize, j: usize) {
        debug_assert!(i < self.len(c) && j < self.len(c));
        let base = c as usize + HEADER_WORDS;
        self.words.swap(base + i, base + j);
    }

    /// The literals of a clause as an iterator (no per-clause allocation).
    #[inline]
    pub fn lits(&self, c: CRef) -> impl Iterator<Item = Lit> + '_ {
        let base = c as usize + HEADER_WORDS;
        self.words[base..base + self.len(c)]
            .iter()
            .map(|&w| Lit::from_code(w as usize))
    }

    /// Scales every live record's activity by `factor` (EVSIDS rescale).
    pub fn scale_activities(&mut self, factor: f32) {
        let mut at = 0usize;
        while at < self.words.len() {
            let len = (self.words[at] >> LEN_SHIFT) as usize;
            let a = f32::from_bits(self.words[at + 2]);
            self.words[at + 2] = (a * factor).to_bits();
            at += HEADER_WORDS + len;
        }
    }

    /// Marks a record dead; its words are reclaimed by the next
    /// [`collect`](Self::collect).
    pub fn mark_dead(&mut self, c: CRef) {
        debug_assert!(!self.is_dead(c));
        self.words[c as usize] |= DEAD_BIT;
        self.wasted += HEADER_WORDS + self.len(c);
    }

    /// Words currently wasted on dead records.
    #[cfg(test)]
    pub fn wasted(&self) -> usize {
        self.wasted
    }

    /// Walks every live record in address order.
    pub fn iter(&self) -> impl Iterator<Item = CRef> + '_ {
        ArenaIter {
            arena: self,
            next: 0,
        }
        .filter(|&c| !self.is_dead(c))
    }

    /// In-place sliding compaction: copies live records down over dead
    /// ones and returns the old→new reference map. Destinations never
    /// pass sources, so the copy stays within the existing buffer.
    pub fn collect(&mut self) -> GcMap {
        let mut map = GcMap::default();
        let mut src = 0usize;
        let mut dst = 0usize;
        let end = self.words.len();
        while src < end {
            let record = HEADER_WORDS + (self.words[src] >> LEN_SHIFT) as usize;
            if self.words[src] & DEAD_BIT == 0 {
                if dst != src {
                    self.words.copy_within(src..src + record, dst);
                }
                map.old.push(src as CRef);
                map.new.push(dst as CRef);
                dst += record;
            }
            src += record;
        }
        self.words.truncate(dst);
        self.wasted = 0;
        map
    }
}

struct ArenaIter<'a> {
    arena: &'a ClauseArena,
    next: usize,
}

impl Iterator for ArenaIter<'_> {
    type Item = CRef;
    fn next(&mut self) -> Option<CRef> {
        if self.next >= self.arena.words.len() {
            return None;
        }
        let c = self.next as CRef;
        self.next += HEADER_WORDS + self.arena.len(c);
        Some(c)
    }
}

/// Old→new `CRef` translation produced by a compaction. Both columns are
/// sorted ascending (records are visited in address order), so lookup is
/// a binary search.
#[derive(Debug, Default)]
pub(crate) struct GcMap {
    old: Vec<CRef>,
    new: Vec<CRef>,
}

impl GcMap {
    /// The post-compaction address of a clause, or `None` if it was dead.
    #[inline]
    pub fn lookup(&self, old: CRef) -> Option<CRef> {
        self.old.binary_search(&old).ok().map(|i| self.new[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;

    fn lits(codes: &[usize]) -> Vec<Lit> {
        codes.iter().map(|&c| Lit::from_code(c)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[0, 3]), false, false, 0);
        let c2 = a.alloc(&lits(&[2, 5, 7]), true, true, 4);
        assert_eq!(a.len(c1), 2);
        assert!(!a.is_learnt(c1) && !a.is_imported(c1));
        assert_eq!(a.len(c2), 3);
        assert!(a.is_learnt(c2) && a.is_imported(c2));
        assert_eq!(a.lbd(c2), 4);
        assert_eq!(a.lit(c2, 1), Lit::from_code(5));
        assert_eq!(a.lits(c2).collect::<Vec<_>>(), lits(&[2, 5, 7]));
    }

    #[test]
    fn activity_round_trips_through_bits() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[0, 2]), true, false, 2);
        assert_eq!(a.activity(c), 0.0);
        a.set_activity(c, 3.25);
        assert_eq!(a.activity(c), 3.25);
    }

    #[test]
    fn swap_and_set_lits() {
        let mut a = ClauseArena::new();
        let c = a.alloc(&lits(&[0, 2, 4]), false, false, 0);
        a.swap_lits(c, 0, 2);
        assert_eq!(a.lits(c).collect::<Vec<_>>(), lits(&[4, 2, 0]));
        a.set_lit(c, 1, Var::new(9).positive());
        assert_eq!(a.lit(c, 1), Var::new(9).positive());
    }

    #[test]
    fn collect_compacts_and_remaps() {
        let mut a = ClauseArena::new();
        let c1 = a.alloc(&lits(&[0, 2]), false, false, 0);
        let c2 = a.alloc(&lits(&[4, 6, 8]), true, false, 3);
        let c3 = a.alloc(&lits(&[1, 3]), true, false, 2);
        a.mark_dead(c2);
        assert!(a.wasted() > 0);
        let map = a.collect();
        assert_eq!(map.lookup(c1), Some(c1), "first record does not move");
        assert_eq!(map.lookup(c2), None, "dead record dropped");
        let c3_new = map.lookup(c3).expect("live record survives");
        assert!(c3_new < c3);
        assert_eq!(a.lits(c3_new).collect::<Vec<_>>(), lits(&[1, 3]));
        assert_eq!(a.lbd(c3_new), 2);
        assert_eq!(a.wasted(), 0);
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn iter_walks_live_records_in_order() {
        let mut a = ClauseArena::new();
        let mut expect = Vec::new();
        for i in 0..10usize {
            expect.push(a.alloc(&lits(&[2 * i, 2 * i + 4]), i % 2 == 0, false, i as u32));
        }
        a.mark_dead(expect[3]);
        a.mark_dead(expect[7]);
        expect.remove(7);
        expect.remove(3);
        assert_eq!(a.iter().collect::<Vec<_>>(), expect);
    }
}

//! Flat two-watched-literal occurrence lists.
//!
//! One `Vec<Watcher>` holds every watch list back to back; each literal
//! owns a segment described by `(offset, len, cap)`. The propagation
//! inner loop then scans one contiguous run of 8-byte `{cref, blocker}`
//! entries per literal — no per-literal `Vec` header chasing, and the
//! blocking-literal fast path stays on hot cache lines.
//!
//! Growth relocates a full segment to the end of the buffer (doubling its
//! capacity) and abandons the old slot; the abandoned words are counted in
//! [`WatchLists::wasted`] and reclaimed by [`WatchLists::rebuild`], which
//! the solver calls at `reduce_db` time (never mid-propagation).
//!
//! Safety of in-loop pushes: while propagating literal `p` the solver
//! scans `p`'s segment by index and may push replacement watches onto
//! *other* literals' segments. A replacement watch for clause `c` targets
//! `!new_watch` where `new_watch` is a non-false literal of `c` — never
//! `!p` itself (`!p` is false right now) — so `p`'s own segment never
//! relocates or grows under the scan, and index-based access stays valid
//! even when the backing buffer reallocates.

use crate::arena::CRef;
use crate::types::Lit;

/// One watch-list entry: the clause plus a cached "blocking" literal; if
/// the blocker is already true the clause is satisfied and the record
/// need not be touched at all.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub cref: CRef,
    pub blocker: Lit,
}

#[derive(Debug, Clone, Copy, Default)]
struct Segment {
    off: u32,
    len: u32,
    cap: u32,
}

/// Flat per-literal watcher lists, indexed by `Lit::code()`.
#[derive(Debug, Clone, Default)]
pub(crate) struct WatchLists {
    data: Vec<Watcher>,
    seg: Vec<Segment>,
    /// Entries abandoned by segment relocations (reclaimed by `rebuild`).
    wasted: usize,
}

const MIN_CAP: u32 = 4;

impl WatchLists {
    pub fn new() -> WatchLists {
        WatchLists::default()
    }

    /// Number of literal slots.
    #[cfg(test)]
    pub fn num_lits(&self) -> usize {
        self.seg.len()
    }

    /// Extends the list table to cover `n` literal codes.
    pub fn grow_to(&mut self, n: usize) {
        if self.seg.len() < n {
            self.seg.resize(n, Segment::default());
        }
    }

    #[inline]
    pub fn len_of(&self, lit_code: usize) -> usize {
        self.seg[lit_code].len as usize
    }

    #[inline]
    pub fn get(&self, lit_code: usize, i: usize) -> Watcher {
        let s = self.seg[lit_code];
        debug_assert!((i as u32) < s.len);
        self.data[s.off as usize + i]
    }

    #[inline]
    pub fn set(&mut self, lit_code: usize, i: usize, w: Watcher) {
        let s = self.seg[lit_code];
        debug_assert!((i as u32) < s.len);
        self.data[s.off as usize + i] = w;
    }

    /// Shortens a segment to `len` entries (propagation's in-place
    /// compaction after dropping moved watchers).
    #[inline]
    pub fn truncate(&mut self, lit_code: usize, len: usize) {
        debug_assert!(len <= self.seg[lit_code].len as usize);
        self.seg[lit_code].len = len as u32;
    }

    /// Appends a watcher to a literal's segment, relocating the segment to
    /// the end of the buffer when it is full.
    pub fn push(&mut self, lit_code: usize, w: Watcher) {
        let s = self.seg[lit_code];
        if s.len == s.cap {
            let new_cap = (s.cap * 2).max(MIN_CAP);
            let new_off = self.data.len() as u32;
            self.data.reserve(new_cap as usize);
            for i in 0..s.len {
                let entry = self.data[(s.off + i) as usize];
                self.data.push(entry);
            }
            self.data.push(w);
            // The abandoned slot plus the spare capacity of the new slot
            // both sit unused in `data` until the next rebuild.
            self.wasted += s.cap as usize;
            for _ in s.len + 1..new_cap {
                self.data.push(Watcher {
                    cref: 0,
                    blocker: Lit::from_code(0),
                });
            }
            self.seg[lit_code] = Segment {
                off: new_off,
                len: s.len + 1,
                cap: new_cap,
            };
        } else {
            self.data[(s.off + s.len) as usize] = w;
            self.seg[lit_code].len += 1;
        }
    }

    /// Entries lost to abandoned segments (a rebuild-trigger signal).
    #[cfg(test)]
    pub fn wasted(&self) -> usize {
        self.wasted
    }

    /// Remaps every watcher's clause reference through `f`, dropping
    /// entries whose clause is gone (`None`). Order within a list is not
    /// preserved — watch lists are unordered sets.
    pub fn retain_map(&mut self, mut f: impl FnMut(CRef) -> Option<CRef>) {
        for code in 0..self.seg.len() {
            let mut i = 0;
            while i < self.seg[code].len as usize {
                let off = self.seg[code].off as usize;
                match f(self.data[off + i].cref) {
                    Some(new) => {
                        self.data[off + i].cref = new;
                        i += 1;
                    }
                    None => {
                        let last = self.seg[code].len as usize - 1;
                        self.data.swap(off + i, off + last);
                        self.seg[code].len = last as u32;
                    }
                }
            }
        }
    }

    /// Repacks every segment contiguously (capacity = length), dropping
    /// the waste accumulated by relocations and deletions.
    pub fn rebuild(&mut self) {
        let live: usize = self.seg.iter().map(|s| s.len as usize).sum();
        let mut data = Vec::with_capacity(live);
        for s in self.seg.iter_mut() {
            let off = data.len() as u32;
            data.extend_from_slice(&self.data[s.off as usize..(s.off + s.len) as usize]);
            *s = Segment {
                off,
                len: s.len,
                cap: s.len,
            };
        }
        self.data = data;
        self.wasted = 0;
    }

    /// Iterates one literal's current watchers (test/diagnostic use).
    #[cfg(test)]
    pub fn iter_list(&self, lit_code: usize) -> impl Iterator<Item = Watcher> + '_ {
        let s = self.seg[lit_code];
        self.data[s.off as usize..(s.off + s.len) as usize]
            .iter()
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(cref: CRef) -> Watcher {
        Watcher {
            cref,
            blocker: Lit::from_code(0),
        }
    }

    fn crefs(lists: &WatchLists, code: usize) -> Vec<CRef> {
        lists.iter_list(code).map(|w| w.cref).collect()
    }

    #[test]
    fn push_and_read_across_relocations() {
        let mut wl = WatchLists::new();
        wl.grow_to(4);
        for i in 0..40 {
            wl.push(i as usize % 4, w(i));
        }
        for code in 0..4 {
            let got = crefs(&wl, code);
            assert_eq!(got.len(), 10);
            assert!(got.iter().all(|&c| c as usize % 4 == code));
        }
        assert!(wl.wasted() > 0, "relocations must be accounted");
    }

    #[test]
    fn truncate_compacts_in_place() {
        let mut wl = WatchLists::new();
        wl.grow_to(1);
        for i in 0..6 {
            wl.push(0, w(i));
        }
        // Keep entries 0 and 2 (as propagation's kept-prefix would).
        let keep: Vec<Watcher> = [0, 2].iter().map(|&i| wl.get(0, i)).collect();
        for (i, &entry) in keep.iter().enumerate() {
            wl.set(0, i, entry);
        }
        wl.truncate(0, keep.len());
        assert_eq!(crefs(&wl, 0), vec![0, 2]);
    }

    #[test]
    fn retain_map_drops_and_remaps() {
        let mut wl = WatchLists::new();
        wl.grow_to(2);
        for i in 0..8 {
            wl.push(i as usize % 2, w(i));
        }
        // Drop odd crefs, halve even ones.
        wl.retain_map(|c| (c % 2 == 0).then_some(c / 2));
        let mut all: Vec<CRef> = crefs(&wl, 0);
        all.extend(crefs(&wl, 1));
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rebuild_reclaims_waste() {
        let mut wl = WatchLists::new();
        wl.grow_to(3);
        for i in 0..60 {
            wl.push(i as usize % 3, w(i));
        }
        let before: Vec<Vec<CRef>> = (0..3).map(|c| crefs(&wl, c)).collect();
        assert!(wl.wasted() > 0);
        wl.rebuild();
        assert_eq!(wl.wasted(), 0);
        let after: Vec<Vec<CRef>> = (0..3).map(|c| crefs(&wl, c)).collect();
        assert_eq!(before, after);
        // Still writable after a rebuild.
        wl.push(1, w(99));
        assert!(crefs(&wl, 1).contains(&99));
    }
}

//! Length-prefixed binary frames for cross-process clause/bound exchange.
//!
//! The portfolio engine shards its lanes across OS processes and, since
//! protocol version 4, across hosts (ROADMAP: multi-host sharding); the
//! coordinator and its workers talk over pipes or TCP in the frame
//! format defined here. The protocol carries exactly the traffic
//! [`SharedContext`](crate::shared::SharedContext) moves between
//! in-process lanes — learnt clauses, incumbent bounds, UNSAT floors,
//! cancellation — plus opaque job/result payloads whose schema belongs
//! to the shard crate, not to this one, plus the fleet-membership
//! frames ([`Frame::Welcome`], [`Frame::Heartbeat`]) that make the TCP
//! transport elastic.
//!
//! # Frame layout
//!
//! ```text
//! [u32 LE body length][u8 tag][payload ...]
//! ```
//!
//! The length counts the tag byte plus the payload. All integers are
//! little-endian, literals travel as their [`Lit::code`] (`u32`). A
//! *physical* frame body is capped at [`MAX_FRAME_LEN`]; a longer
//! declared length is rejected *before* any allocation, so a corrupt
//! length prefix cannot OOM the reader.
//!
//! A *logical* frame whose body would exceed the physical cap is split
//! at encode time into continuation frames (tag `12`): each carries
//! `[flags u8][slice ...]` where flag bit 0 means "more chunks follow".
//! The decoder reassembles the chunk run (bounded by
//! [`MAX_MESSAGE_LEN`]) before decoding the logical body, so oversized
//! `Trace`/`BlackBox` batches round-trip instead of tearing down the
//! link.
//!
//! # Error behavior
//!
//! Decoding never panics. Input that ends before the declared frame
//! does yields [`WireError::Truncated`] — and *only* that case: a
//! complete frame whose payload is internally inconsistent (e.g. a
//! corrupt clause count) is [`WireError::Malformed`], never
//! `Truncated`, so a streaming reader can trust `Truncated` to mean
//! "wait for more bytes" without deadlocking on corruption. An unknown
//! tag is [`WireError::BadTag`]. All structured, so a bridge can log
//! and drop a bad peer instead of taking the coordinator down with it.

use crate::shared::SharedClause;
use crate::types::Lit;
use std::io::{self, Read, Write};

/// Protocol version; bump on any incompatible frame change. A peer
/// whose [`Frame::Hello`] names a different version is rejected.
///
/// Version 2 added the [`Frame::Trace`] span-batch frame. Version 3
/// added the [`Frame::BlackBox`] flight-recorder checkpoint frame.
/// Version 4 added the TCP fleet frames ([`Frame::Welcome`],
/// [`Frame::Heartbeat`]), chunked continuation frames for oversized
/// bodies, the [`HELLO_ANY_SHARD`] registration sentinel, and the
/// [`Frame::Incumbent`] encoding-bearing bound improvement.
pub const PROTOCOL_VERSION: u32 = 4;

/// Upper bound on a *physical* frame body (tag + payload), chosen to
/// keep a corrupt length prefix harmless. Logical frames larger than
/// this are chunked at encode time.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Upper bound on a reassembled (chunked) logical frame body. Caps the
/// decoder's reassembly buffer so a hostile chunk run cannot OOM the
/// reader; [`Frame::encode`] refuses to produce anything larger.
pub const MAX_MESSAGE_LEN: usize = 64 * 1024 * 1024;

/// `shard` sentinel in a [`Frame::Hello`] meaning "assign me a shard
/// id": a fresh fleet worker registers with this and learns its actual
/// shard from the coordinator's [`Frame::Welcome`]. A reconnecting
/// worker sends its previous shard id instead to rejoin.
pub const HELLO_ANY_SHARD: u32 = u32::MAX;

/// Structured decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the declared frame did. This is the only
    /// "wait for more bytes" error; see the module docs.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The declared body length exceeds [`MAX_FRAME_LEN`], or a chunk
    /// run reassembles past [`MAX_MESSAGE_LEN`].
    Oversized {
        /// The declared (or accumulated) length.
        len: usize,
    },
    /// The tag byte names no known frame type.
    BadTag(u8),
    /// A payload field violates its invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: needed {expected} bytes, got {got}")
            }
            WireError::Oversized { len } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds cap of {MAX_FRAME_LEN} \
                     (reassembled cap {MAX_MESSAGE_LEN})"
                )
            }
            WireError::BadTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A clause crossing the process boundary: the in-process
/// [`SharedClause`] plus the shard that produced it, so the coordinator
/// can forward it to every shard *except* its origin (no echo loops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteClause {
    /// Index of the shard whose lane learnt the clause.
    pub shard: u32,
    /// The clause (its `source` is the producer's *lane* within that
    /// shard — diagnostics only once it crosses the boundary).
    pub clause: SharedClause,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator, first frame: identifies the shard and the
    /// protocol version it speaks. Over TCP, `shard` may be
    /// [`HELLO_ANY_SHARD`] to request an assignment.
    Hello {
        /// The worker's shard index, or [`HELLO_ANY_SHARD`].
        shard: u32,
        /// [`PROTOCOL_VERSION`] of the worker binary.
        protocol: u32,
    },
    /// Coordinator → worker, handshake reply (TCP fleet only): the
    /// shard id the worker now owns and the coordinator's protocol
    /// version. `shard == HELLO_ANY_SHARD` means the registration was
    /// rejected (version mismatch) and the connection is closing.
    Welcome {
        /// The assigned shard index, or [`HELLO_ANY_SHARD`] on reject.
        shard: u32,
        /// [`PROTOCOL_VERSION`] of the coordinator binary.
        protocol: u32,
    },
    /// Liveness probe, either direction (TCP fleet only). A worker
    /// sends these periodically; the coordinator echoes them back, so
    /// both sides can measure peer silence. Carries a sender-local
    /// sequence number for lag diagnostics.
    Heartbeat {
        /// Sender-local monotonically increasing sequence number.
        seq: u64,
    },
    /// Coordinator → worker: the problem and lane assignment, as an
    /// opaque payload (the shard crate owns the schema).
    Job(Vec<u8>),
    /// A learnt clause, either direction.
    Clause(RemoteClause),
    /// An incumbent weight (a feasible encoding of this weight exists
    /// somewhere in the race), either direction.
    Bound(u64),
    /// An UNSAT floor (no encoding strictly below this weight exists);
    /// worker → coordinator.
    Floor(u64),
    /// Coordinator → worker: the race is decided, stop and report.
    Cancel,
    /// Worker → coordinator, terminal frame: the shard's outcome, as an
    /// opaque payload (the shard crate owns the schema).
    Result(Vec<u8>),
    /// Worker → coordinator: a batch of telemetry spans recorded on the
    /// worker, as an opaque payload (the telemetry crate owns the
    /// schema). Best-effort — a coordinator may ignore it, and a worker
    /// only ships it when the job asked for tracing.
    Trace(Vec<u8>),
    /// Worker → coordinator: a flight-recorder checkpoint (the worker's
    /// last log events and span closures plus its job context), as an
    /// opaque payload (the shard crate owns the schema). Always-on and
    /// best-effort: the coordinator keeps only the latest checkpoint
    /// per worker, and turns it into a post-mortem bundle if the worker
    /// dies or breaks protocol.
    BlackBox(Vec<u8>),
    /// Worker → coordinator: the full encoding behind an improved
    /// incumbent bound, as an opaque payload (the shard crate owns the
    /// schema). [`Frame::Bound`] announces only the *weight*; if the
    /// announcing worker then dies, every surviving lane has already
    /// been steered below a witness nobody holds, and the race ends
    /// floor-met but artifact-less. Shipping the strings with the
    /// improvement makes the incumbent survive its finder.
    Incumbent(Vec<u8>),
}

const TAG_HELLO: u8 = 1;
const TAG_JOB: u8 = 2;
const TAG_CLAUSE: u8 = 3;
const TAG_BOUND: u8 = 4;
const TAG_FLOOR: u8 = 5;
const TAG_CANCEL: u8 = 6;
const TAG_RESULT: u8 = 7;
const TAG_TRACE: u8 = 8;
const TAG_BLACKBOX: u8 = 9;
const TAG_WELCOME: u8 = 10;
const TAG_HEARTBEAT: u8 = 11;
/// Physical continuation frame: `[flags u8][slice ...]`. Never surfaces
/// as a [`Frame`] — the decoder reassembles the run into the logical
/// frame it carries.
const TAG_CHUNK: u8 = 12;
const TAG_INCUMBENT: u8 = 13;

/// `bound_tag` presence flags in a clause payload.
const BOUND_TAG_ABSENT: u8 = 0;
const BOUND_TAG_PRESENT: u8 = 1;

/// Chunk flag bit 0: more chunks follow this one.
const CHUNK_MORE: u8 = 1;

/// Largest logical-body slice one chunk frame can carry (its physical
/// body also holds the chunk tag and the flags byte).
const CHUNK_SLICE_LEN: usize = MAX_FRAME_LEN - 2;

impl Frame {
    /// Stable lower-case name of the frame type, for per-type wire
    /// metrics (`wire_frames_total{type="clause",...}`).
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Welcome { .. } => "welcome",
            Frame::Heartbeat { .. } => "heartbeat",
            Frame::Job(_) => "job",
            Frame::Clause(_) => "clause",
            Frame::Bound(_) => "bound",
            Frame::Floor(_) => "floor",
            Frame::Cancel => "cancel",
            Frame::Result(_) => "result",
            Frame::Trace(_) => "trace",
            Frame::BlackBox(_) => "blackbox",
            Frame::Incumbent(_) => "incumbent",
        }
    }

    /// Appends the logical body (tag + payload, no length prefix).
    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { shard, protocol } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&protocol.to_le_bytes());
            }
            Frame::Welcome { shard, protocol } => {
                out.push(TAG_WELCOME);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&protocol.to_le_bytes());
            }
            Frame::Heartbeat { seq } => {
                out.push(TAG_HEARTBEAT);
                out.extend_from_slice(&seq.to_le_bytes());
            }
            Frame::Job(payload) => {
                out.push(TAG_JOB);
                out.extend_from_slice(payload);
            }
            Frame::Clause(remote) => {
                out.push(TAG_CLAUSE);
                out.extend_from_slice(&remote.shard.to_le_bytes());
                out.extend_from_slice(&(remote.clause.source as u32).to_le_bytes());
                out.extend_from_slice(&remote.clause.lbd.to_le_bytes());
                match remote.clause.bound_tag {
                    None => out.push(BOUND_TAG_ABSENT),
                    Some(tag) => {
                        out.push(BOUND_TAG_PRESENT);
                        out.extend_from_slice(&(tag as u64).to_le_bytes());
                    }
                }
                out.extend_from_slice(&(remote.clause.lits.len() as u32).to_le_bytes());
                for lit in &remote.clause.lits {
                    out.extend_from_slice(&(lit.code() as u32).to_le_bytes());
                }
            }
            Frame::Bound(weight) => {
                out.push(TAG_BOUND);
                out.extend_from_slice(&weight.to_le_bytes());
            }
            Frame::Floor(floor) => {
                out.push(TAG_FLOOR);
                out.extend_from_slice(&floor.to_le_bytes());
            }
            Frame::Cancel => out.push(TAG_CANCEL),
            Frame::Result(payload) => {
                out.push(TAG_RESULT);
                out.extend_from_slice(payload);
            }
            Frame::Trace(payload) => {
                out.push(TAG_TRACE);
                out.extend_from_slice(payload);
            }
            Frame::BlackBox(payload) => {
                out.push(TAG_BLACKBOX);
                out.extend_from_slice(payload);
            }
            Frame::Incumbent(payload) => {
                out.push(TAG_INCUMBENT);
                out.extend_from_slice(payload);
            }
        }
    }

    /// Appends the encoded frame (length prefix included) to `out`,
    /// splitting bodies larger than [`MAX_FRAME_LEN`] into continuation
    /// frames so every physical frame honors the cap.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] if the body exceeds [`MAX_MESSAGE_LEN`]
    /// — enforced here, at encode time, so an oversized batch fails on
    /// the producer instead of tearing down the peer's link.
    pub fn encode(&self, out: &mut Vec<u8>) -> Result<(), WireError> {
        let start = out.len();
        out.extend_from_slice(&[0u8; 4]); // length back-patched below
        self.encode_body(out);
        let body_len = out.len() - start - 4;
        if body_len <= MAX_FRAME_LEN {
            out[start..start + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
            return Ok(());
        }
        if body_len > MAX_MESSAGE_LEN {
            out.truncate(start);
            return Err(WireError::Oversized { len: body_len });
        }
        // Re-emit the oversized body as a chunk run. The body was
        // appended in place above; carve it out and split it.
        let body = out.split_off(start + 4);
        out.truncate(start);
        let mut chunks = body.chunks(CHUNK_SLICE_LEN).peekable();
        while let Some(slice) = chunks.next() {
            let flags = if chunks.peek().is_some() {
                CHUNK_MORE
            } else {
                0
            };
            out.extend_from_slice(&((slice.len() + 2) as u32).to_le_bytes());
            out.push(TAG_CHUNK);
            out.push(flags);
            out.extend_from_slice(slice);
        }
        Ok(())
    }

    /// The encoded byte form (length prefix included, chunked if the
    /// body exceeds [`MAX_FRAME_LEN`]).
    ///
    /// # Errors
    ///
    /// Same as [`Frame::encode`].
    pub fn to_bytes(&self) -> Result<Vec<u8>, WireError> {
        let mut out = Vec::new();
        self.encode(&mut out)?;
        Ok(out)
    }

    /// Decodes one logical frame from the front of `input`, reassembling
    /// a chunk run if the frame was split at encode time.
    ///
    /// Returns the frame and the number of bytes consumed (spanning
    /// every physical frame of a chunk run), so a reader holding a
    /// buffer of concatenated frames can iterate.
    ///
    /// # Errors
    ///
    /// See the module docs; never panics on any input.
    pub fn decode(input: &[u8]) -> Result<(Frame, usize), WireError> {
        let mut at = 0;
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            if input.len() < at + 4 {
                return Err(WireError::Truncated {
                    expected: at + 4,
                    got: input.len(),
                });
            }
            let body_len =
                u32::from_le_bytes([input[at], input[at + 1], input[at + 2], input[at + 3]])
                    as usize;
            if body_len > MAX_FRAME_LEN {
                return Err(WireError::Oversized { len: body_len });
            }
            if body_len == 0 {
                return Err(WireError::Malformed("zero-length frame body"));
            }
            let total = at + 4 + body_len;
            if input.len() < total {
                return Err(WireError::Truncated {
                    expected: total,
                    got: input.len(),
                });
            }
            let body = &input[at + 4..total];
            at = total;
            if body[0] == TAG_CHUNK {
                if body.len() < 3 {
                    return Err(WireError::Malformed("chunk frame without payload"));
                }
                let more = match body[1] {
                    0 => false,
                    CHUNK_MORE => true,
                    _ => return Err(WireError::Malformed("chunk flags out of range")),
                };
                let acc = assembled.get_or_insert_with(Vec::new);
                if acc.len() + body.len() - 2 > MAX_MESSAGE_LEN {
                    return Err(WireError::Oversized {
                        len: acc.len() + body.len() - 2,
                    });
                }
                acc.extend_from_slice(&body[2..]);
                if more {
                    continue;
                }
                let acc = assembled.take().expect("chunk accumulator exists");
                let frame = Frame::decode_body(&acc).map_err(demote_truncation)?;
                return Ok((frame, at));
            }
            if assembled.is_some() {
                return Err(WireError::Malformed("unchunked frame inside a chunk run"));
            }
            let frame = Frame::decode_body(body).map_err(demote_truncation)?;
            return Ok((frame, at));
        }
    }

    /// Decodes a frame body (tag + payload, no length prefix).
    fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        if body.is_empty() {
            return Err(WireError::Malformed("empty frame body"));
        }
        let tag = body[0];
        let mut r = Cursor {
            buf: &body[1..],
            at: 0,
        };
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                shard: r.u32()?,
                protocol: r.u32()?,
            },
            TAG_WELCOME => Frame::Welcome {
                shard: r.u32()?,
                protocol: r.u32()?,
            },
            TAG_HEARTBEAT => Frame::Heartbeat { seq: r.u64()? },
            TAG_JOB => return Ok(Frame::Job(body[1..].to_vec())),
            TAG_CLAUSE => {
                let shard = r.u32()?;
                let source = r.u32()? as usize;
                let lbd = r.u32()?;
                let bound_tag = match r.u8()? {
                    BOUND_TAG_ABSENT => None,
                    BOUND_TAG_PRESENT => Some(r.u64()? as usize),
                    _ => return Err(WireError::Malformed("bound-tag flag out of range")),
                };
                let count = r.u32()? as usize;
                if count == 0 {
                    return Err(WireError::Malformed("empty clause"));
                }
                // A corrupt count must not drive a huge allocation: the
                // remaining payload bounds the real literal count.
                if count > r.remaining() / 4 {
                    return Err(WireError::Truncated {
                        expected: 4 + body.len() - r.remaining() + 4 * count,
                        got: 4 + body.len(),
                    });
                }
                let mut lits = Vec::with_capacity(count);
                for _ in 0..count {
                    lits.push(Lit::from_code(r.u32()? as usize));
                }
                Frame::Clause(RemoteClause {
                    shard,
                    clause: SharedClause {
                        lits,
                        lbd,
                        bound_tag,
                        source,
                    },
                })
            }
            TAG_BOUND => Frame::Bound(r.u64()?),
            TAG_FLOOR => Frame::Floor(r.u64()?),
            TAG_CANCEL => Frame::Cancel,
            TAG_RESULT => return Ok(Frame::Result(body[1..].to_vec())),
            TAG_TRACE => return Ok(Frame::Trace(body[1..].to_vec())),
            TAG_BLACKBOX => return Ok(Frame::BlackBox(body[1..].to_vec())),
            TAG_INCUMBENT => return Ok(Frame::Incumbent(body[1..].to_vec())),
            TAG_CHUNK => return Err(WireError::Malformed("chunk run nested inside a chunk run")),
            other => return Err(WireError::BadTag(other)),
        };
        if r.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after payload"));
        }
        Ok(frame)
    }
}

/// Inside a *complete* physical frame, "not enough payload" is
/// corruption, not a partial read — demote it so streaming readers
/// never wait for bytes that can't arrive.
fn demote_truncation(e: WireError) -> WireError {
    match e {
        WireError::Truncated { .. } => {
            WireError::Malformed("payload truncated inside a complete frame")
        }
        other => other,
    }
}

/// Bounds-checked little-endian reader over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                expected: self.at + n,
                got: self.buf.len(),
            });
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Failures of the blocking [`read_frame`] / [`write_frame`] helpers
/// and of [`FrameReader`].
#[derive(Debug)]
pub enum FrameIoError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream delivered a malformed frame.
    Wire(WireError),
}

impl std::fmt::Display for FrameIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameIoError::Io(e) => write!(f, "frame I/O: {e}"),
            FrameIoError::Wire(e) => write!(f, "frame decode: {e}"),
        }
    }
}

impl std::error::Error for FrameIoError {}

impl From<io::Error> for FrameIoError {
    fn from(e: io::Error) -> Self {
        FrameIoError::Io(e)
    }
}

impl From<WireError> for FrameIoError {
    fn from(e: WireError) -> Self {
        FrameIoError::Wire(e)
    }
}

/// Is this I/O error a "try the same read again" condition rather than
/// a dead stream? `Interrupted` is a stray signal; `WouldBlock` /
/// `TimedOut` are a read timeout expiring on a transport that has one
/// (every TCP peer here does).
fn retryable(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// One step of a [`FrameReader`].
#[derive(Debug)]
pub enum FrameRead {
    /// A complete logical frame, plus the wire bytes it occupied
    /// (length prefixes included, spanning any chunk run) — the input
    /// for per-direction byte metrics.
    Frame {
        /// The decoded frame.
        frame: Frame,
        /// Wire bytes consumed by the frame.
        wire_bytes: usize,
    },
    /// Clean EOF on a frame boundary: the peer closed its end.
    Eof,
    /// The stream's read timeout expired mid-wait. No data was lost —
    /// the reader holds any partial frame and resumes on the next call.
    Idle,
}

/// A buffered, resumable frame reader for streams with read timeouts.
///
/// The stateless [`read_frame`] helper cannot survive a read timeout at
/// an arbitrary byte position without either blocking forever or losing
/// the bytes it already consumed — fatal over TCP, where every peer
/// sets a timeout to stay responsive to shutdown. `FrameReader` buffers
/// partial input across calls instead: a timeout surfaces as
/// [`FrameRead::Idle`] with the partial frame retained, `Interrupted`
/// is retried internally, and only EOF-inside-a-frame or corruption
/// surface as errors.
///
/// The reader owns its buffer, not the stream, so the same reader can
/// follow a stream wherever the caller moves it.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

/// Bytes asked of the stream per refill.
const READ_CHUNK: usize = 64 * 1024;

/// Compact the buffer once this many consumed bytes accumulate.
const COMPACT_AT: usize = 256 * 1024;

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Bytes buffered but not yet decoded (a partial frame in flight).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Reads until one logical frame, EOF, or a timeout.
    ///
    /// # Errors
    ///
    /// EOF in the middle of a frame ([`io::ErrorKind::UnexpectedEof`]),
    /// non-retryable stream failures, and corrupt frames.
    pub fn read(&mut self, stream: &mut impl Read) -> Result<FrameRead, FrameIoError> {
        loop {
            if self.pending() > 0 {
                match Frame::decode(&self.buf[self.start..]) {
                    Ok((frame, used)) => {
                        self.start += used;
                        if self.start == self.buf.len() {
                            self.buf.clear();
                            self.start = 0;
                        } else if self.start >= COMPACT_AT {
                            self.buf.drain(..self.start);
                            self.start = 0;
                        }
                        return Ok(FrameRead::Frame {
                            frame,
                            wire_bytes: used,
                        });
                    }
                    Err(WireError::Truncated { .. }) => {} // need more bytes
                    Err(e) => return Err(e.into()),
                }
            }
            let filled = self.buf.len();
            self.buf.resize(filled + READ_CHUNK, 0);
            match stream.read(&mut self.buf[filled..]) {
                Ok(0) => {
                    self.buf.truncate(filled);
                    if self.pending() == 0 {
                        return Ok(FrameRead::Eof);
                    }
                    return Err(FrameIoError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside a frame",
                    )));
                }
                Ok(n) => self.buf.truncate(filled + n),
                Err(e) => {
                    self.buf.truncate(filled);
                    match e.kind() {
                        io::ErrorKind::Interrupted => {}
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                            return Ok(FrameRead::Idle)
                        }
                        _ => return Err(e.into()),
                    }
                }
            }
        }
    }
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean EOF *between* frames (the peer closed
/// its end); EOF in the middle of a frame is an
/// [`io::ErrorKind::UnexpectedEof`] error. `Interrupted` and
/// timeout-style errors (`WouldBlock`/`TimedOut`) are retried at the
/// exact byte position reached, so a read timeout never desyncs the
/// stream — but a caller that needs to *do something* on a timeout
/// (check a cancel flag, send a heartbeat) should use [`FrameReader`]
/// instead, which surfaces timeouts as [`FrameRead::Idle`].
///
/// # Errors
///
/// Stream failures and malformed frames; see [`FrameIoError`].
pub fn read_frame(stream: &mut impl Read) -> Result<Option<Frame>, FrameIoError> {
    Ok(read_frame_counted(stream)?.map(|(frame, _)| frame))
}

/// Fills `buf` exactly, retrying interrupted and timed-out reads.
fn read_exact_resumable(stream: &mut impl Read, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if retryable(e.kind()) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// [`read_frame`], plus the number of wire bytes the frame occupied
/// (length prefixes included, spanning any chunk run) — the input for
/// per-direction byte metrics.
///
/// # Errors
///
/// Same as [`read_frame`].
pub fn read_frame_counted(stream: &mut impl Read) -> Result<Option<(Frame, usize)>, FrameIoError> {
    let mut assembled: Option<Vec<u8>> = None;
    let mut wire = 0usize;
    loop {
        let mut prefix = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            match stream.read(&mut prefix[filled..]) {
                Ok(0) if filled == 0 && wire == 0 => return Ok(None),
                Ok(0) => {
                    return Err(FrameIoError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside a frame length prefix",
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if retryable(e.kind()) => {}
                Err(e) => return Err(e.into()),
            }
        }
        let body_len = u32::from_le_bytes(prefix) as usize;
        if body_len > MAX_FRAME_LEN {
            return Err(WireError::Oversized { len: body_len }.into());
        }
        if body_len == 0 {
            return Err(WireError::Malformed("zero-length frame body").into());
        }
        let mut body = vec![0u8; body_len];
        read_exact_resumable(stream, &mut body)?;
        wire += 4 + body_len;
        if body[0] == TAG_CHUNK {
            if body.len() < 3 {
                return Err(WireError::Malformed("chunk frame without payload").into());
            }
            let more = match body[1] {
                0 => false,
                CHUNK_MORE => true,
                _ => return Err(WireError::Malformed("chunk flags out of range").into()),
            };
            let acc = assembled.get_or_insert_with(Vec::new);
            if acc.len() + body.len() - 2 > MAX_MESSAGE_LEN {
                return Err(WireError::Oversized {
                    len: acc.len() + body.len() - 2,
                }
                .into());
            }
            acc.extend_from_slice(&body[2..]);
            if more {
                continue;
            }
            let acc = assembled.take().expect("chunk accumulator exists");
            let frame = Frame::decode_body(&acc).map_err(demote_truncation)?;
            return Ok(Some((frame, wire)));
        }
        if assembled.is_some() {
            return Err(WireError::Malformed("unchunked frame inside a chunk run").into());
        }
        let frame = Frame::decode_body(&body).map_err(demote_truncation)?;
        return Ok(Some((frame, wire)));
    }
}

/// Writes one frame to a blocking stream (no flush; callers batch).
///
/// # Errors
///
/// Propagates stream failures; a body over [`MAX_MESSAGE_LEN`] is
/// [`io::ErrorKind::InvalidData`].
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> io::Result<()> {
    let bytes = frame
        .to_bytes()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    stream.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(ids: &[i64]) -> Vec<Lit> {
        ids.iter().map(|&i| Lit::from_dimacs(i)).collect()
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                shard: 3,
                protocol: PROTOCOL_VERSION,
            },
            Frame::Welcome {
                shard: 3,
                protocol: PROTOCOL_VERSION,
            },
            Frame::Heartbeat { seq: 712 },
            Frame::Job(b"{\"modes\":4}".to_vec()),
            Frame::Clause(RemoteClause {
                shard: 1,
                clause: SharedClause {
                    lits: lits(&[1, -2, 17]),
                    lbd: 2,
                    bound_tag: Some(40),
                    source: 2,
                },
            }),
            Frame::Clause(RemoteClause {
                shard: 0,
                clause: SharedClause {
                    lits: lits(&[-9]),
                    lbd: 1,
                    bound_tag: None,
                    source: 0,
                },
            }),
            Frame::Bound(66),
            Frame::Floor(64),
            Frame::Incumbent(b"{\"weight\":66,\"strings\":[\"XZ\"]}".to_vec()),
            Frame::Cancel,
            Frame::Result(b"{\"weight\":64}".to_vec()),
            Frame::Trace(b"{\"events\":[]}".to_vec()),
            Frame::BlackBox(b"{\"records\":[]}".to_vec()),
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in sample_frames() {
            let bytes = frame.to_bytes().expect("encodes");
            let (decoded, used) = Frame::decode(&bytes).expect("decodes");
            assert_eq!(decoded, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn concatenated_frames_decode_in_order() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            f.encode(&mut buf).expect("encodes");
        }
        let mut at = 0;
        for expected in &frames {
            let (got, used) = Frame::decode(&buf[at..]).expect("decodes");
            assert_eq!(&got, expected);
            at += used;
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn every_truncation_is_a_structured_error() {
        for frame in sample_frames() {
            let bytes = frame.to_bytes().expect("encodes");
            for cut in 0..bytes.len() {
                match Frame::decode(&bytes[..cut]) {
                    Err(WireError::Truncated { .. }) => {}
                    other => panic!("truncation at {cut} of {frame:?} gave {other:?}"),
                }
            }
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut bytes = Frame::Cancel.to_bytes().expect("encodes");
        bytes[4] = 0xEE;
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadTag(0xEE)));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut bytes = vec![0u8; 8];
        bytes[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::Oversized {
                len: u32::MAX as usize
            })
        );
    }

    #[test]
    fn corrupt_clause_count_is_malformed_not_truncated() {
        let frame = Frame::Clause(RemoteClause {
            shard: 0,
            clause: SharedClause {
                lits: lits(&[1, 2]),
                lbd: 2,
                bound_tag: None,
                source: 0,
            },
        });
        let mut bytes = frame.to_bytes().expect("encodes");
        // The literal count sits 13 bytes into the body (tag + shard +
        // source + lbd + flag); blow it up without growing the payload.
        let count_at = 4 + 1 + 4 + 4 + 4 + 1;
        bytes[count_at..count_at + 4].copy_from_slice(&(u32::MAX).to_le_bytes());
        // The frame is complete per its length prefix, so the corrupt
        // count must read as corruption — a streaming reader must not
        // be told to wait for bytes that will never come.
        match Frame::decode(&bytes) {
            Err(WireError::Malformed(_)) => {}
            other => panic!("corrupt count gave {other:?}"),
        }
    }

    #[test]
    fn oversized_body_chunks_and_round_trips() {
        let payload: Vec<u8> = (0..MAX_FRAME_LEN + MAX_FRAME_LEN / 2)
            .map(|i| (i % 251) as u8)
            .collect();
        let frame = Frame::BlackBox(payload);
        let bytes = frame.to_bytes().expect("encodes");
        // Every physical frame honors the cap.
        let mut at = 0;
        let mut physical = 0;
        while at < bytes.len() {
            let len = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]])
                as usize;
            assert!(
                len <= MAX_FRAME_LEN,
                "physical frame body of {len} over cap"
            );
            at += 4 + len;
            physical += 1;
        }
        assert_eq!(at, bytes.len());
        assert!(physical >= 2, "oversized body must split");
        let (decoded, used) = Frame::decode(&bytes).expect("reassembles");
        assert_eq!(decoded, frame);
        assert_eq!(used, bytes.len());
    }

    #[test]
    fn truncated_chunk_run_reads_as_truncated() {
        let frame = Frame::Trace(vec![7u8; MAX_FRAME_LEN + 100]);
        let bytes = frame.to_bytes().expect("encodes");
        // Cut after the first full chunk frame: the decoder must ask
        // for more bytes, not misread the partial run.
        let first_len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize + 4;
        match Frame::decode(&bytes[..first_len]) {
            Err(WireError::Truncated { .. }) => {}
            other => panic!("partial chunk run gave {other:?}"),
        }
    }

    #[test]
    fn encode_rejects_bodies_over_message_cap() {
        let frame = Frame::Trace(vec![0u8; MAX_MESSAGE_LEN + 1]);
        let mut out = vec![0xAA; 3];
        match frame.encode(&mut out) {
            Err(WireError::Oversized { .. }) => {}
            other => panic!("over-cap body gave {other:?}"),
        }
        // A failed encode must not leave partial bytes behind.
        assert_eq!(out, vec![0xAA; 3]);
    }

    #[test]
    fn read_frame_handles_eof_positions() {
        let bytes = Frame::Bound(9).to_bytes().expect("encodes");
        // Clean EOF between frames.
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(None)));
        // EOF inside a frame.
        let mut torn: &[u8] = &bytes[..5];
        assert!(matches!(read_frame(&mut torn), Err(FrameIoError::Io(_))));
        // A full frame then EOF.
        let mut whole: &[u8] = &bytes;
        assert_eq!(read_frame(&mut whole).unwrap(), Some(Frame::Bound(9)));
        assert!(matches!(read_frame(&mut whole), Ok(None)));
    }

    #[test]
    fn counted_reader_reports_wire_bytes() {
        for frame in sample_frames() {
            let bytes = frame.to_bytes().expect("encodes");
            let mut stream: &[u8] = &bytes;
            let (got, n) = read_frame_counted(&mut stream).unwrap().unwrap();
            assert_eq!(got, frame);
            assert_eq!(n, bytes.len(), "counted size covers prefix + body");
        }
    }

    #[test]
    fn frame_reader_decodes_a_concatenated_stream() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            f.encode(&mut buf).expect("encodes");
        }
        let mut stream: &[u8] = &buf;
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        loop {
            match reader.read(&mut stream).expect("reads") {
                FrameRead::Frame { frame, .. } => got.push(frame),
                FrameRead::Eof => break,
                FrameRead::Idle => unreachable!("slice streams never time out"),
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn frame_kinds_are_distinct() {
        let mut kinds: Vec<&str> = sample_frames().iter().map(Frame::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        // Twelve distinct frame types (the sample set repeats Clause).
        assert_eq!(kinds.len(), 12);
    }
}

//! Length-prefixed binary frames for cross-process clause/bound exchange.
//!
//! The portfolio engine shards its lanes across OS processes (ROADMAP:
//! multi-process sharding); the coordinator and its workers talk over
//! pipes in the frame format defined here. The protocol carries exactly
//! the traffic [`SharedContext`](crate::shared::SharedContext) moves
//! between in-process lanes — learnt clauses, incumbent bounds, UNSAT
//! floors, cancellation — plus opaque job/result payloads whose schema
//! belongs to the shard crate, not to this one.
//!
//! # Frame layout
//!
//! ```text
//! [u32 LE body length][u8 tag][payload ...]
//! ```
//!
//! The length counts the tag byte plus the payload. All integers are
//! little-endian, literals travel as their [`Lit::code`] (`u32`). A frame
//! body is capped at [`MAX_FRAME_LEN`]; a longer declared length is
//! rejected *before* any allocation, so a corrupt length prefix cannot
//! OOM the reader.
//!
//! # Error behavior
//!
//! Decoding never panics. Truncated input yields
//! [`WireError::Truncated`], an unknown tag [`WireError::BadTag`], and
//! any malformed payload (zero-length clause, flag byte out of range)
//! [`WireError::Malformed`] — all structured, so a bridge can log and
//! drop a bad peer instead of taking the coordinator down with it.

use crate::shared::SharedClause;
use crate::types::Lit;
use std::io::{self, Read, Write};

/// Protocol version; bump on any incompatible frame change. A worker
/// whose [`Frame::Hello`] names a different version is rejected.
///
/// Version 2 added the [`Frame::Trace`] span-batch frame. Version 3
/// added the [`Frame::BlackBox`] flight-recorder checkpoint frame.
pub const PROTOCOL_VERSION: u32 = 3;

/// Upper bound on a frame body (tag + payload), chosen to fit any
/// realistic job/result payload while keeping a corrupt length prefix
/// harmless.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Structured decode failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the declared frame did.
    Truncated {
        /// Bytes the decoder needed.
        expected: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The declared body length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// The tag byte names no known frame type.
    BadTag(u8),
    /// A payload field violates its invariant.
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { expected, got } => {
                write!(f, "truncated frame: needed {expected} bytes, got {got}")
            }
            WireError::Oversized { len } => {
                write!(
                    f,
                    "frame body of {len} bytes exceeds cap of {MAX_FRAME_LEN}"
                )
            }
            WireError::BadTag(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A clause crossing the process boundary: the in-process
/// [`SharedClause`] plus the shard that produced it, so the coordinator
/// can forward it to every shard *except* its origin (no echo loops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteClause {
    /// Index of the shard whose lane learnt the clause.
    pub shard: u32,
    /// The clause (its `source` is the producer's *lane* within that
    /// shard — diagnostics only once it crosses the boundary).
    pub clause: SharedClause,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Worker → coordinator, first frame: identifies the shard and the
    /// protocol version it speaks.
    Hello {
        /// The worker's shard index.
        shard: u32,
        /// [`PROTOCOL_VERSION`] of the worker binary.
        protocol: u32,
    },
    /// Coordinator → worker: the problem and lane assignment, as an
    /// opaque payload (the shard crate owns the schema).
    Job(Vec<u8>),
    /// A learnt clause, either direction.
    Clause(RemoteClause),
    /// An incumbent weight (a feasible encoding of this weight exists
    /// somewhere in the race), either direction.
    Bound(u64),
    /// An UNSAT floor (no encoding strictly below this weight exists);
    /// worker → coordinator.
    Floor(u64),
    /// Coordinator → worker: the race is decided, stop and report.
    Cancel,
    /// Worker → coordinator, terminal frame: the shard's outcome, as an
    /// opaque payload (the shard crate owns the schema).
    Result(Vec<u8>),
    /// Worker → coordinator: a batch of telemetry spans recorded on the
    /// worker, as an opaque payload (the telemetry crate owns the
    /// schema). Best-effort — a coordinator may ignore it, and a worker
    /// only ships it when the job asked for tracing.
    Trace(Vec<u8>),
    /// Worker → coordinator: a flight-recorder checkpoint (the worker's
    /// last log events and span closures plus its job context), as an
    /// opaque payload (the shard crate owns the schema). Always-on and
    /// best-effort: the coordinator keeps only the latest checkpoint
    /// per worker, and turns it into a post-mortem bundle if the worker
    /// dies or breaks protocol.
    BlackBox(Vec<u8>),
}

const TAG_HELLO: u8 = 1;
const TAG_JOB: u8 = 2;
const TAG_CLAUSE: u8 = 3;
const TAG_BOUND: u8 = 4;
const TAG_FLOOR: u8 = 5;
const TAG_CANCEL: u8 = 6;
const TAG_RESULT: u8 = 7;
const TAG_TRACE: u8 = 8;
const TAG_BLACKBOX: u8 = 9;

/// `bound_tag` presence flags in a clause payload.
const BOUND_TAG_ABSENT: u8 = 0;
const BOUND_TAG_PRESENT: u8 = 1;

impl Frame {
    /// Stable lower-case name of the frame type, for per-type wire
    /// metrics (`wire_frames_total{type="clause",...}`).
    pub fn kind(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Job(_) => "job",
            Frame::Clause(_) => "clause",
            Frame::Bound(_) => "bound",
            Frame::Floor(_) => "floor",
            Frame::Cancel => "cancel",
            Frame::Result(_) => "result",
            Frame::Trace(_) => "trace",
            Frame::BlackBox(_) => "blackbox",
        }
    }

    /// Appends the encoded frame (length prefix included) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&[0u8; 4]); // length back-patched below
        match self {
            Frame::Hello { shard, protocol } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&protocol.to_le_bytes());
            }
            Frame::Job(payload) => {
                out.push(TAG_JOB);
                out.extend_from_slice(payload);
            }
            Frame::Clause(remote) => {
                out.push(TAG_CLAUSE);
                out.extend_from_slice(&remote.shard.to_le_bytes());
                out.extend_from_slice(&(remote.clause.source as u32).to_le_bytes());
                out.extend_from_slice(&remote.clause.lbd.to_le_bytes());
                match remote.clause.bound_tag {
                    None => out.push(BOUND_TAG_ABSENT),
                    Some(tag) => {
                        out.push(BOUND_TAG_PRESENT);
                        out.extend_from_slice(&(tag as u64).to_le_bytes());
                    }
                }
                out.extend_from_slice(&(remote.clause.lits.len() as u32).to_le_bytes());
                for lit in &remote.clause.lits {
                    out.extend_from_slice(&(lit.code() as u32).to_le_bytes());
                }
            }
            Frame::Bound(weight) => {
                out.push(TAG_BOUND);
                out.extend_from_slice(&weight.to_le_bytes());
            }
            Frame::Floor(floor) => {
                out.push(TAG_FLOOR);
                out.extend_from_slice(&floor.to_le_bytes());
            }
            Frame::Cancel => out.push(TAG_CANCEL),
            Frame::Result(payload) => {
                out.push(TAG_RESULT);
                out.extend_from_slice(payload);
            }
            Frame::Trace(payload) => {
                out.push(TAG_TRACE);
                out.extend_from_slice(payload);
            }
            Frame::BlackBox(payload) => {
                out.push(TAG_BLACKBOX);
                out.extend_from_slice(payload);
            }
        }
        let body_len = (out.len() - start - 4) as u32;
        out[start..start + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// The encoded byte form (length prefix included).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes one frame from the front of `input`.
    ///
    /// Returns the frame and the number of bytes consumed, so a reader
    /// holding a buffer of concatenated frames can iterate.
    ///
    /// # Errors
    ///
    /// See the module docs; never panics on any input.
    pub fn decode(input: &[u8]) -> Result<(Frame, usize), WireError> {
        if input.len() < 4 {
            return Err(WireError::Truncated {
                expected: 4,
                got: input.len(),
            });
        }
        let body_len = u32::from_le_bytes([input[0], input[1], input[2], input[3]]) as usize;
        if body_len > MAX_FRAME_LEN {
            return Err(WireError::Oversized { len: body_len });
        }
        if body_len == 0 {
            return Err(WireError::Malformed("zero-length frame body"));
        }
        let total = 4 + body_len;
        if input.len() < total {
            return Err(WireError::Truncated {
                expected: total,
                got: input.len(),
            });
        }
        let body = &input[4..total];
        let frame = Frame::decode_body(body)?;
        Ok((frame, total))
    }

    /// Decodes a frame body (tag + payload, no length prefix).
    fn decode_body(body: &[u8]) -> Result<Frame, WireError> {
        let tag = body[0];
        let mut r = Cursor {
            buf: &body[1..],
            at: 0,
        };
        let frame = match tag {
            TAG_HELLO => Frame::Hello {
                shard: r.u32()?,
                protocol: r.u32()?,
            },
            TAG_JOB => return Ok(Frame::Job(body[1..].to_vec())),
            TAG_CLAUSE => {
                let shard = r.u32()?;
                let source = r.u32()? as usize;
                let lbd = r.u32()?;
                let bound_tag = match r.u8()? {
                    BOUND_TAG_ABSENT => None,
                    BOUND_TAG_PRESENT => Some(r.u64()? as usize),
                    _ => return Err(WireError::Malformed("bound-tag flag out of range")),
                };
                let count = r.u32()? as usize;
                if count == 0 {
                    return Err(WireError::Malformed("empty clause"));
                }
                // A corrupt count must not drive a huge allocation: the
                // remaining payload bounds the real literal count.
                if count > r.remaining() / 4 {
                    return Err(WireError::Truncated {
                        expected: 4 + body.len() - r.remaining() + 4 * count,
                        got: 4 + body.len(),
                    });
                }
                let mut lits = Vec::with_capacity(count);
                for _ in 0..count {
                    lits.push(Lit::from_code(r.u32()? as usize));
                }
                Frame::Clause(RemoteClause {
                    shard,
                    clause: SharedClause {
                        lits,
                        lbd,
                        bound_tag,
                        source,
                    },
                })
            }
            TAG_BOUND => Frame::Bound(r.u64()?),
            TAG_FLOOR => Frame::Floor(r.u64()?),
            TAG_CANCEL => Frame::Cancel,
            TAG_RESULT => return Ok(Frame::Result(body[1..].to_vec())),
            TAG_TRACE => return Ok(Frame::Trace(body[1..].to_vec())),
            TAG_BLACKBOX => return Ok(Frame::BlackBox(body[1..].to_vec())),
            other => return Err(WireError::BadTag(other)),
        };
        if r.remaining() != 0 {
            return Err(WireError::Malformed("trailing bytes after payload"));
        }
        Ok(frame)
    }
}

/// Bounds-checked little-endian reader over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Cursor<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn take(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                expected: self.at + n,
                got: self.buf.len(),
            });
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Failures of the blocking [`read_frame`] / [`write_frame`] helpers.
#[derive(Debug)]
pub enum FrameIoError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The stream delivered a malformed frame.
    Wire(WireError),
}

impl std::fmt::Display for FrameIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameIoError::Io(e) => write!(f, "frame I/O: {e}"),
            FrameIoError::Wire(e) => write!(f, "frame decode: {e}"),
        }
    }
}

impl std::error::Error for FrameIoError {}

impl From<io::Error> for FrameIoError {
    fn from(e: io::Error) -> Self {
        FrameIoError::Io(e)
    }
}

impl From<WireError> for FrameIoError {
    fn from(e: WireError) -> Self {
        FrameIoError::Wire(e)
    }
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on a clean EOF *between* frames (the peer closed
/// its end); EOF in the middle of a frame is an
/// [`io::ErrorKind::UnexpectedEof`] error.
///
/// # Errors
///
/// Stream failures and malformed frames; see [`FrameIoError`].
pub fn read_frame(stream: &mut impl Read) -> Result<Option<Frame>, FrameIoError> {
    Ok(read_frame_counted(stream)?.map(|(frame, _)| frame))
}

/// [`read_frame`], plus the number of wire bytes the frame occupied
/// (length prefix included) — the input for per-direction byte metrics.
///
/// # Errors
///
/// Same as [`read_frame`].
pub fn read_frame_counted(stream: &mut impl Read) -> Result<Option<(Frame, usize)>, FrameIoError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match stream.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameIoError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside a frame length prefix",
                )))
            }
            Ok(n) => filled += n,
            // A stray signal must not look like a dead peer.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let body_len = u32::from_le_bytes(prefix) as usize;
    if body_len > MAX_FRAME_LEN {
        return Err(WireError::Oversized { len: body_len }.into());
    }
    if body_len == 0 {
        return Err(WireError::Malformed("zero-length frame body").into());
    }
    let mut body = vec![0u8; body_len];
    stream.read_exact(&mut body)?;
    Ok(Some((Frame::decode_body(&body)?, 4 + body_len)))
}

/// Writes one frame to a blocking stream (no flush; callers batch).
///
/// # Errors
///
/// Propagates stream failures.
pub fn write_frame(stream: &mut impl Write, frame: &Frame) -> io::Result<()> {
    stream.write_all(&frame.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(ids: &[i64]) -> Vec<Lit> {
        ids.iter().map(|&i| Lit::from_dimacs(i)).collect()
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                shard: 3,
                protocol: PROTOCOL_VERSION,
            },
            Frame::Job(b"{\"modes\":4}".to_vec()),
            Frame::Clause(RemoteClause {
                shard: 1,
                clause: SharedClause {
                    lits: lits(&[1, -2, 17]),
                    lbd: 2,
                    bound_tag: Some(40),
                    source: 2,
                },
            }),
            Frame::Clause(RemoteClause {
                shard: 0,
                clause: SharedClause {
                    lits: lits(&[-9]),
                    lbd: 1,
                    bound_tag: None,
                    source: 0,
                },
            }),
            Frame::Bound(66),
            Frame::Floor(64),
            Frame::Cancel,
            Frame::Result(b"{\"weight\":64}".to_vec()),
            Frame::Trace(b"{\"events\":[]}".to_vec()),
            Frame::BlackBox(b"{\"records\":[]}".to_vec()),
        ]
    }

    #[test]
    fn frames_round_trip() {
        for frame in sample_frames() {
            let bytes = frame.to_bytes();
            let (decoded, used) = Frame::decode(&bytes).expect("decodes");
            assert_eq!(decoded, frame);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn concatenated_frames_decode_in_order() {
        let frames = sample_frames();
        let mut buf = Vec::new();
        for f in &frames {
            f.encode(&mut buf);
        }
        let mut at = 0;
        for expected in &frames {
            let (got, used) = Frame::decode(&buf[at..]).expect("decodes");
            assert_eq!(&got, expected);
            at += used;
        }
        assert_eq!(at, buf.len());
    }

    #[test]
    fn every_truncation_is_a_structured_error() {
        for frame in sample_frames() {
            let bytes = frame.to_bytes();
            for cut in 0..bytes.len() {
                match Frame::decode(&bytes[..cut]) {
                    Err(WireError::Truncated { .. }) => {}
                    other => panic!("truncation at {cut} of {frame:?} gave {other:?}"),
                }
            }
        }
    }

    #[test]
    fn bad_tag_is_rejected() {
        let mut bytes = Frame::Cancel.to_bytes();
        bytes[4] = 0xEE;
        assert_eq!(Frame::decode(&bytes), Err(WireError::BadTag(0xEE)));
    }

    #[test]
    fn oversized_length_prefix_rejected_without_allocation() {
        let mut bytes = vec![0u8; 8];
        bytes[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(WireError::Oversized {
                len: u32::MAX as usize
            })
        );
    }

    #[test]
    fn corrupt_clause_count_cannot_drive_allocation() {
        let frame = Frame::Clause(RemoteClause {
            shard: 0,
            clause: SharedClause {
                lits: lits(&[1, 2]),
                lbd: 2,
                bound_tag: None,
                source: 0,
            },
        });
        let mut bytes = frame.to_bytes();
        // The literal count sits 13 bytes into the body (tag + shard +
        // source + lbd + flag); blow it up without growing the payload.
        let count_at = 4 + 1 + 4 + 4 + 4 + 1;
        bytes[count_at..count_at + 4].copy_from_slice(&(u32::MAX).to_le_bytes());
        match Frame::decode(&bytes) {
            Err(WireError::Truncated { .. }) => {}
            other => panic!("corrupt count gave {other:?}"),
        }
    }

    #[test]
    fn read_frame_handles_eof_positions() {
        let bytes = Frame::Bound(9).to_bytes();
        // Clean EOF between frames.
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(None)));
        // EOF inside a frame.
        let mut torn: &[u8] = &bytes[..5];
        assert!(matches!(read_frame(&mut torn), Err(FrameIoError::Io(_))));
        // A full frame then EOF.
        let mut whole: &[u8] = &bytes;
        assert_eq!(read_frame(&mut whole).unwrap(), Some(Frame::Bound(9)));
        assert!(matches!(read_frame(&mut whole), Ok(None)));
    }

    #[test]
    fn counted_reader_reports_wire_bytes() {
        for frame in sample_frames() {
            let bytes = frame.to_bytes();
            let mut stream: &[u8] = &bytes;
            let (got, n) = read_frame_counted(&mut stream).unwrap().unwrap();
            assert_eq!(got, frame);
            assert_eq!(n, bytes.len(), "counted size covers prefix + body");
        }
    }

    #[test]
    fn frame_kinds_are_distinct() {
        let mut kinds: Vec<&str> = sample_frames().iter().map(Frame::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        // Nine distinct frame types (the sample set repeats Clause).
        assert_eq!(kinds.len(), 9);
    }
}

//! Property tests for the cross-process wire protocol (`sat::wire`):
//! arbitrary frames encode→decode identically, and no truncation or byte
//! corruption can make the decoder panic — it must return structured
//! [`WireError`]s, because a shard coordinator feeds it bytes produced by
//! a *different process* that may have died mid-write.

use proptest::prelude::*;
use sat::wire::{Frame, RemoteClause, WireError};
use sat::{SharedClause, Var};

fn round_trip(frame: &Frame) {
    let bytes = frame.to_bytes().expect("well-formed frame encodes");
    let (decoded, used) = Frame::decode(&bytes).expect("well-formed frame decodes");
    assert_eq!(&decoded, frame);
    assert_eq!(used, bytes.len(), "decode must consume the whole frame");
}

fn clause_frame(
    shard: u32,
    source: u32,
    lbd: u32,
    bound_tag: Option<usize>,
    lits: &[(usize, bool)],
) -> Frame {
    Frame::Clause(RemoteClause {
        shard,
        clause: SharedClause {
            lits: lits.iter().map(|&(v, pos)| Var::new(v).lit(pos)).collect(),
            lbd,
            bound_tag,
            source: source as usize,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn clause_frames_round_trip(
        shard in 0u32..16,
        source in 0u32..16,
        lbd in 0u32..256,
        tagged in any::<bool>(),
        tag in 0u64..100_000,
        lits in proptest::collection::vec((0usize..5_000, any::<bool>()), 1..40),
    ) {
        let frame = clause_frame(shard, source, lbd, tagged.then_some(tag as usize), &lits);
        round_trip(&frame);
    }

    #[test]
    fn bound_floor_and_control_frames_round_trip(
        kind in 0u8..5,
        value in 0u64..=u64::MAX,
        shard in 0u32..=u32::MAX,
        payload in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let frame = match kind {
            0 => Frame::Bound(value),
            1 => Frame::Floor(value),
            2 => Frame::Cancel,
            3 => Frame::Hello { shard, protocol: value as u32 },
            _ => if shard % 2 == 0 { Frame::Job(payload) } else { Frame::Result(payload) },
        };
        round_trip(&frame);
    }

    #[test]
    fn truncation_yields_structured_errors(
        cut_fraction in 0.0f64..1.0,
        shard in 0u32..8,
        lbd in 0u32..8,
        lits in proptest::collection::vec((0usize..100, any::<bool>()), 1..12),
    ) {
        let frame = clause_frame(shard, 0, lbd, None, &lits);
        let bytes = frame.to_bytes().expect("encodes");
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < bytes.len());
        match Frame::decode(&bytes[..cut]) {
            Err(WireError::Truncated { expected, got }) => {
                prop_assert!(got < expected, "truncated error must be consistent");
                prop_assert_eq!(got, cut);
            }
            other => prop_assert!(false, "truncation at {} gave {:?}", cut, other),
        }
    }

    #[test]
    fn corruption_never_panics(
        flip_at_fraction in 0.0f64..1.0,
        flip_bits in 1u8..=255,
        value in 0u64..1_000_000,
        lits in proptest::collection::vec((0usize..100, any::<bool>()), 1..12),
        pick in 0u8..3,
    ) {
        let frame = match pick {
            0 => clause_frame(3, 1, 2, Some(value as usize), &lits),
            1 => Frame::Bound(value),
            _ => Frame::Result(value.to_le_bytes().to_vec()),
        };
        let mut bytes = frame.to_bytes().expect("encodes");
        let at = ((bytes.len() as f64) * flip_at_fraction) as usize;
        bytes[at] ^= flip_bits;
        // Any outcome is acceptable except a panic: the flip may still
        // decode (payload bytes), or fail with any structured error.
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn concatenated_streams_decode_frame_by_frame(
        bounds in proptest::collection::vec(0u64..1_000, 1..20),
    ) {
        let frames: Vec<Frame> = bounds.iter().map(|&b| Frame::Bound(b)).collect();
        let mut buf = Vec::new();
        for f in &frames {
            f.encode(&mut buf).expect("encodes");
        }
        let mut at = 0;
        for expected in &frames {
            let (got, used) = Frame::decode(&buf[at..]).expect("stream frame decodes");
            prop_assert_eq!(&got, expected);
            at += used;
        }
        prop_assert_eq!(at, buf.len());
    }
}

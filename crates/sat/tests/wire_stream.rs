//! Property tests for the *streaming* half of `sat::wire`: the
//! resumable [`FrameReader`] and the retrying [`read_frame`] must
//! deliver exactly the frames that were written no matter how the
//! transport slices the bytes — one at a time, in bursts, or
//! interleaved with the retryable errors (`Interrupted`, `WouldBlock`,
//! `TimedOut`) a TCP socket with a read timeout produces constantly.
//! A shard link that desyncs on a partial read poisons every frame
//! after it, so this is the contract the whole fleet stands on.

use proptest::prelude::*;
use sat::wire::{read_frame, Frame, FrameRead, FrameReader, RemoteClause};
use sat::{SharedClause, Var};
use std::io::{self, Read};

/// One scripted behavior of the underlying transport.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Deliver at most this many bytes (clamped to what the caller's
    /// buffer and the remaining data allow, minimum 1 while data lasts).
    Give(usize),
    Fail(io::ErrorKind),
}

/// A `Read` impl that replays `data` according to a schedule of
/// partial deliveries and transient errors, then streams the remainder
/// and EOFs.
struct ScriptedStream {
    data: Vec<u8>,
    pos: usize,
    script: Vec<Step>,
    step: usize,
}

impl ScriptedStream {
    fn new(data: Vec<u8>, script: Vec<Step>) -> ScriptedStream {
        ScriptedStream {
            data,
            pos: 0,
            script,
            step: 0,
        }
    }
}

impl Read for ScriptedStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.data.len() - self.pos;
        if self.step < self.script.len() {
            let step = self.script[self.step];
            self.step += 1;
            match step {
                Step::Fail(kind) => return Err(io::Error::new(kind, "scripted")),
                Step::Give(n) => {
                    if remaining == 0 {
                        return Ok(0);
                    }
                    // Never a scripted `Ok(0)` while data remains: that
                    // would be an EOF, which is a *different* contract.
                    let n = n.clamp(1, remaining.min(buf.len()));
                    buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                    self.pos += n;
                    return Ok(n);
                }
            }
        }
        if remaining == 0 {
            return Ok(0);
        }
        let n = remaining.min(buf.len());
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn sample_frames(seed: &[u64]) -> Vec<Frame> {
    seed.iter()
        .enumerate()
        .map(|(i, &v)| match v % 6 {
            0 => Frame::Bound(v),
            1 => Frame::Floor(v),
            2 => Frame::Heartbeat { seq: v },
            5 => Frame::Incumbent(v.to_be_bytes().repeat((v % 11) as usize + 1)),
            3 => Frame::Clause(RemoteClause {
                shard: (v % 7) as u32,
                clause: SharedClause {
                    lits: (0..=(v % 9) as usize)
                        .map(|k| Var::new(k + 1).lit(k % 2 == 0))
                        .collect(),
                    lbd: (v % 30) as u32,
                    bound_tag: (v % 2 == 0).then_some(v as usize),
                    source: i,
                },
            }),
            _ => Frame::BlackBox(v.to_le_bytes().repeat((v % 40) as usize + 1)),
        })
        .collect()
}

fn encode_all(frames: &[Frame]) -> Vec<u8> {
    let mut buf = Vec::new();
    for frame in frames {
        frame.encode(&mut buf).expect("well-formed frame encodes");
    }
    buf
}

/// Decodes a proptest-generated `(kind, n)` pair into a schedule step —
/// the vendored proptest has no `prop_oneof`, so enum variants are
/// picked by integer tag.
fn steps(raw: &[(u8, usize)]) -> Vec<Step> {
    raw.iter()
        .map(|&(kind, n)| match kind % 4 {
            0 => Step::Give(n),
            1 => Step::Fail(io::ErrorKind::Interrupted),
            2 => Step::Fail(io::ErrorKind::WouldBlock),
            _ => Step::Fail(io::ErrorKind::TimedOut),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // The buffered reader recovers every frame across any schedule of
    // byte splits and transient errors, then reports a clean EOF.
    #[test]
    fn frame_reader_survives_any_split_and_timeout_schedule(
        seed in proptest::collection::vec(0u64..1_000_000, 1..24),
        script in proptest::collection::vec((0u8..4, 1usize..64), 0..96),
    ) {
        let frames = sample_frames(&seed);
        let mut stream = ScriptedStream::new(encode_all(&frames), steps(&script));
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        loop {
            match reader.read(&mut stream) {
                Ok(FrameRead::Frame { frame, .. }) => got.push(frame),
                Ok(FrameRead::Idle) => continue, // a real caller would poll again
                Ok(FrameRead::Eof) => break,
                Err(e) => panic!("reader error: {e}"),
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(reader.pending(), 0, "no bytes may linger after a clean EOF");
    }

    // Wire-byte accounting is exact under arbitrary schedules: the
    // per-frame counts sum to the stream's total length.
    #[test]
    fn frame_reader_counts_every_wire_byte(
        seed in proptest::collection::vec(0u64..1_000_000, 1..16),
        script in proptest::collection::vec((0u8..4, 1usize..64), 0..48),
    ) {
        let frames = sample_frames(&seed);
        let encoded = encode_all(&frames);
        let total = encoded.len();
        let mut stream = ScriptedStream::new(encoded, steps(&script));
        let mut reader = FrameReader::new();
        let mut counted = 0usize;
        loop {
            match reader.read(&mut stream) {
                Ok(FrameRead::Frame { wire_bytes, .. }) => counted += wire_bytes,
                Ok(FrameRead::Idle) => continue,
                Ok(FrameRead::Eof) => break,
                Err(e) => panic!("reader error: {e}"),
            }
        }
        prop_assert_eq!(counted, total);
    }

    // The stateless `read_frame` retries transient errors at the exact
    // byte position instead of desyncing — even when the error lands in
    // the middle of a length prefix or body.
    #[test]
    fn read_frame_resumes_across_transient_errors(
        seed in proptest::collection::vec(0u64..1_000_000, 1..16),
        script in proptest::collection::vec((0u8..4, 1usize..64), 0..64),
    ) {
        let frames = sample_frames(&seed);
        let mut stream = ScriptedStream::new(encode_all(&frames), steps(&script));
        let mut got = Vec::new();
        while let Some(frame) =
            read_frame(&mut stream).unwrap_or_else(|e| panic!("read_frame error: {e}"))
        {
            got.push(frame);
        }
        prop_assert_eq!(got, frames);
    }

    // EOF inside a frame is an error, never a silent truncation — no
    // matter where the cut lands or what the schedule did before it.
    #[test]
    fn frame_reader_flags_eof_inside_a_frame(
        seed in proptest::collection::vec(0u64..1_000_000, 1..8),
        cut_back in 1usize..16,
        script in proptest::collection::vec((0u8..4, 1usize..64), 0..32),
    ) {
        let frames = sample_frames(&seed);
        let mut encoded = encode_all(&frames);
        // The cut must land strictly *inside* the last frame — cutting a
        // whole frame off leaves a frame boundary, where EOF is clean.
        let last_len = {
            let mut b = Vec::new();
            frames.last().unwrap().encode(&mut b).unwrap();
            b.len()
        };
        let cut = 1 + cut_back % (last_len - 1);
        encoded.truncate(encoded.len() - cut);
        let mut stream = ScriptedStream::new(encoded, steps(&script));
        let mut reader = FrameReader::new();
        loop {
            match reader.read(&mut stream) {
                Ok(FrameRead::Frame { .. }) | Ok(FrameRead::Idle) => continue,
                Ok(FrameRead::Eof) => panic!("EOF mid-frame reported as clean"),
                Err(_) => break, // structured error: correct
            }
        }
    }
}

/// A reader fed one byte at a time — with a timeout after every single
/// byte — still decodes a multi-frame stream (the pathological-but-legal
/// slow-sender case).
#[test]
fn frame_reader_survives_byte_at_a_time_with_timeouts() {
    let frames = vec![
        Frame::Bound(16),
        Frame::Heartbeat { seq: 9 },
        Frame::Job(b"payload".to_vec()),
    ];
    let encoded = encode_all(&frames);
    let script: Vec<Step> = encoded
        .iter()
        .flat_map(|_| [Step::Give(1), Step::Fail(io::ErrorKind::WouldBlock)])
        .collect();
    let mut stream = ScriptedStream::new(encoded, script);
    let mut reader = FrameReader::new();
    let mut got = Vec::new();
    let mut idles = 0usize;
    loop {
        match reader
            .read(&mut stream)
            .expect("no errors in this schedule")
        {
            FrameRead::Frame { frame, .. } => got.push(frame),
            FrameRead::Idle => idles += 1,
            FrameRead::Eof => break,
        }
    }
    assert_eq!(got, frames);
    assert!(idles > 0, "the schedule must actually have exercised Idle");
}

//! Cross-crate invariants on Fermion-to-qubit encodings.
//!
//! These are the properties the paper's formulation relies on, checked
//! across the classical constructions and the SAT solver's output.

use fermihedral_repro::encodings::validate::{validate, validate_strings};
use fermihedral_repro::encodings::weight::majorana_weight;
use fermihedral_repro::encodings::{Encoding, LinearEncoding, TernaryTreeEncoding};
use fermihedral_repro::fermihedral::descent::{solve_optimal, DescentConfig};
use fermihedral_repro::fermihedral::enumerate::{enumerate_encodings, EnumerateConfig};
use fermihedral_repro::fermihedral::{EncodingProblem, Objective};
use fermihedral_repro::pauli::PhasedString;
use std::time::Duration;

#[test]
fn classical_encodings_valid_up_to_n8() {
    for n in 1..=8 {
        for (name, report) in [
            ("jw", validate(&LinearEncoding::jordan_wigner(n))),
            ("parity", validate(&LinearEncoding::parity(n))),
            ("bk", validate(&LinearEncoding::bravyi_kitaev(n))),
            ("tt", validate(&TernaryTreeEncoding::new(n))),
        ] {
            assert!(report.is_valid(), "{name} at n={n}: {report:?}");
        }
    }
}

#[test]
fn linear_encodings_preserve_vacuum_ternary_tree_does_not_claim_it() {
    for n in 1..=6 {
        assert!(validate(&LinearEncoding::jordan_wigner(n)).vacuum_preserving);
        assert!(validate(&LinearEncoding::parity(n)).vacuum_preserving);
        assert!(validate(&LinearEncoding::bravyi_kitaev(n)).vacuum_preserving);
    }
}

#[test]
fn optimal_weights_match_known_small_values() {
    // Proven by UNSAT certificates: N=1 → 2, N=2 → 6, N=3 → 11, N=4 → 16.
    let expected = [(1usize, 2usize), (2, 6), (3, 11), (4, 16)];
    for (n, w) in expected {
        let outcome = solve_optimal(
            &EncodingProblem::full_sat(n, Objective::MajoranaWeight),
            &DescentConfig {
                solve_timeout: Some(Duration::from_secs(30)),
                total_timeout: Some(Duration::from_secs(60)),
                ..Default::default()
            },
        );
        assert_eq!(outcome.weight(), Some(w), "n={n}");
        assert!(outcome.optimal_proved, "n={n} should certify optimality");
    }
}

#[test]
fn optimal_weight_monotone_and_below_baselines() {
    // The optimum can't exceed any valid construction's weight.
    let mut last = 0;
    for n in 1..=3 {
        let outcome = solve_optimal(
            &EncodingProblem::full_sat(n, Objective::MajoranaWeight),
            &DescentConfig::default(),
        );
        let w = outcome.weight().expect("solves quickly");
        let jw = majorana_weight(&LinearEncoding::jordan_wigner(n).majoranas());
        let bk = majorana_weight(&LinearEncoding::bravyi_kitaev(n).majoranas());
        let tt = majorana_weight(&TernaryTreeEncoding::new(n).majoranas());
        assert!(
            w <= jw.min(bk).min(tt),
            "n={n}: optimal {w} vs {jw}/{bk}/{tt}"
        );
        assert!(w >= last, "weight should not decrease with size");
        last = w;
    }
}

#[test]
fn dropping_algebraic_independence_only_relaxes() {
    // Without the clause set, the optimum cannot get worse (fewer
    // constraints), and at small N rank-checking restores validity.
    for n in 2..=3 {
        let full = solve_optimal(
            &EncodingProblem::full_sat(n, Objective::MajoranaWeight),
            &DescentConfig::default(),
        );
        let relaxed = solve_optimal(
            &EncodingProblem::new(n, Objective::MajoranaWeight),
            &DescentConfig::default(),
        );
        let wf = full.weight().unwrap();
        let wr = relaxed.weight().unwrap();
        assert!(wr <= wf, "n={n}: relaxed {wr} > full {wf}");
        // Rank-validated relaxed solutions are genuinely valid.
        let strings: Vec<PhasedString> = relaxed
            .best
            .unwrap()
            .strings
            .into_iter()
            .map(PhasedString::from)
            .collect();
        assert!(validate_strings(&strings).is_valid());
    }
}

#[test]
fn enumerated_optimal_encodings_are_valid_and_distinct() {
    let instance = EncodingProblem::full_sat(2, Objective::MajoranaWeight).build();
    let sols = enumerate_encodings(
        &instance,
        &EnumerateConfig {
            max_solutions: 40,
            weight_bound: Some(7),
            ..Default::default()
        },
    );
    assert!(sols.len() >= 4, "several optimal 2-mode encodings exist");
    let mut seen = std::collections::BTreeSet::new();
    for s in &sols {
        assert!(seen.insert(s.clone()), "duplicate encoding");
        let phased: Vec<PhasedString> = s.iter().cloned().map(PhasedString::from).collect();
        let report = validate_strings(&phased);
        assert!(report.is_valid());
        assert!(report.xy_pair_condition, "vacuum condition enforced");
    }
}

#[test]
fn ham_dependent_optimum_at_most_ham_independent_weight() {
    // For the structure = the 2N single-Majorana monomials, the two
    // objectives coincide.
    use fermihedral_repro::fermion::MajoranaMonomial;
    let n = 2;
    let singles: Vec<MajoranaMonomial> = (0..2 * n as u32)
        .map(|i| MajoranaMonomial::from_sorted(vec![i]))
        .collect();
    let dep = solve_optimal(
        &EncodingProblem::full_sat(n, Objective::HamiltonianWeight(singles)),
        &DescentConfig::default(),
    );
    let indep = solve_optimal(
        &EncodingProblem::full_sat(n, Objective::MajoranaWeight),
        &DescentConfig::default(),
    );
    assert_eq!(dep.weight(), indep.weight());
}

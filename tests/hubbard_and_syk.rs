//! Integration: Fermi-Hubbard and SYK pipelines (the paper's other two
//! benchmark families).

use fermihedral_repro::circuit::optimize::optimize;
use fermihedral_repro::circuit::trotter_circuit;
use fermihedral_repro::encodings::map::{map_hamiltonian, map_majorana_sum};
use fermihedral_repro::encodings::weight::{hamiltonian_weight, structure_weight};
use fermihedral_repro::encodings::{Encoding, LinearEncoding, MajoranaEncoding};
use fermihedral_repro::fermihedral::anneal::{anneal_pairing, AnnealConfig};
use fermihedral_repro::fermion::fock::{hamiltonian_matrix, majorana_sum_matrix};
use fermihedral_repro::fermion::models::{FermiHubbard, Lattice, SykModel};
use fermihedral_repro::fermion::MajoranaSum;
use fermihedral_repro::mathkit::eigen::eigh;
use rand::SeedableRng;

fn chain(sites: usize) -> FermiHubbard {
    FermiHubbard::new(
        Lattice::Chain {
            sites,
            periodic: true,
        },
        1.0,
        4.0,
    )
}

#[test]
fn hubbard_spectra_preserved_through_encodings() {
    let h = chain(3).hamiltonian();
    let reference = eigh(&hamiltonian_matrix(&h)).values;
    for enc in [
        LinearEncoding::jordan_wigner(6),
        LinearEncoding::bravyi_kitaev(6),
    ] {
        let mapped = map_hamiltonian(&enc, &h);
        let eigs = eigh(&mapped.to_matrix()).values;
        for (a, b) in reference.iter().zip(&eigs) {
            assert!((a - b).abs() < 1e-7, "{}: {a} vs {b}", Encoding::name(&enc));
        }
    }
}

#[test]
fn hubbard_annealing_beats_identity_pairing_for_jw() {
    // JW on a periodic chain has position-dependent string weights, so the
    // pairing search has room to improve the hopping terms that wrap
    // around.
    let h = chain(4).hamiltonian();
    let sum = MajoranaSum::from_fermion(&h);
    let monomials: Vec<_> = sum.weight_structure().into_iter().cloned().collect();
    let jw = MajoranaEncoding::new("jw", LinearEncoding::jordan_wigner(8).majoranas()).unwrap();
    let out = anneal_pairing(&jw, &monomials, &AnnealConfig::default());
    assert!(out.weight <= out.initial_weight);
    // Cross-check the reported weight.
    assert_eq!(
        out.weight,
        hamiltonian_weight(&out.encoding.majoranas(), &sum)
    );
}

#[test]
fn hubbard_compiled_gate_count_tracks_weight() {
    // Across encodings of the same Hamiltonian, structural Pauli weight and
    // compiled CNOT count must rank identically (Section 2.1.3's premise).
    let h = chain(3).hamiltonian();
    let sum = MajoranaSum::from_fermion(&h);
    let mut results = Vec::new();
    for (name, enc) in [
        ("jw", LinearEncoding::jordan_wigner(6)),
        ("bk", LinearEncoding::bravyi_kitaev(6)),
    ] {
        let weight = hamiltonian_weight(&enc.majoranas(), &sum);
        let mut mapped = map_hamiltonian(&enc, &h);
        mapped.take_identity();
        let circuit = optimize(&trotter_circuit(&mapped, 1.0, 1));
        results.push((name, weight, circuit.counts().cnot));
    }
    results.sort_by_key(|r| r.1);
    let cnots: Vec<usize> = results.iter().map(|r| r.2).collect();
    assert!(
        cnots.windows(2).all(|w| w[0] <= w[1]),
        "CNOT order should follow weight order: {results:?}"
    );
}

#[test]
fn syk_hamiltonian_maps_isospectrally() {
    let model = SykModel::new(3, 1.0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let h = model.sample(&mut rng);
    let reference = eigh(&majorana_sum_matrix(&h)).values;
    for enc in [
        LinearEncoding::jordan_wigner(3),
        LinearEncoding::bravyi_kitaev(3),
    ] {
        let mapped = map_majorana_sum(&enc, &h);
        assert!(mapped.is_hermitian(1e-9));
        let eigs = eigh(&mapped.to_matrix()).values;
        for (a, b) in reference.iter().zip(&eigs) {
            assert!((a - b).abs() < 1e-7);
        }
    }
}

#[test]
fn syk_structure_weight_invariant_under_pairing_permutation() {
    // All Majorana quadruples appear, so permuting pairs cannot change the
    // structural weight — the reason the paper's annealing needs *string*
    // diversity, not just pairing, on SYK (see pipeline docs).
    let model = SykModel::new(4, 1.0);
    let monomials = model.monomials();
    let enc = MajoranaEncoding::new("bk", LinearEncoding::bravyi_kitaev(4).majoranas()).unwrap();
    let base = structure_weight(&enc.majoranas(), &monomials);
    for perm in [[1usize, 0, 2, 3], [3, 2, 1, 0], [1, 2, 3, 0]] {
        let permuted = enc.permuted_pairs(&perm);
        assert_eq!(structure_weight(&permuted.majoranas(), &monomials), base);
    }
}

#[test]
fn half_filling_sector_energy_reachable() {
    // The Hubbard chain conserves particle number; check that the mapped
    // Hamiltonian's spectrum contains the half-filled ground energy found
    // in Fock space (sector-resolved sanity).
    let h = chain(2).hamiltonian();
    let fock = hamiltonian_matrix(&h);
    let eig = eigh(&fock);
    // Count states: dimension 16 for 4 modes.
    assert_eq!(eig.values.len(), 16);
    let mapped = map_hamiltonian(&LinearEncoding::bravyi_kitaev(4), &h);
    let qeig = eigh(&mapped.to_matrix());
    for (a, b) in eig.values.iter().zip(&qeig.values) {
        assert!((a - b).abs() < 1e-8);
    }
}

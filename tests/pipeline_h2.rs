//! End-to-end integration: the H₂ pipeline across every crate.
//!
//! Exercises the full chain the paper's evaluation depends on:
//! integrals → second quantization → encoding (classical and SAT-optimal)
//! → qubit Hamiltonian → spectrum → Trotter compilation → optimization →
//! (noisy) simulation → shot-based measurement.

use fermihedral_repro::circuit::optimize::optimize;
use fermihedral_repro::circuit::{circuit_unitary, evolution, trotter_circuit};
use fermihedral_repro::encodings::map::map_hamiltonian;
use fermihedral_repro::encodings::validate::validate;
use fermihedral_repro::encodings::{LinearEncoding, MajoranaEncoding};
use fermihedral_repro::fermihedral::descent::{solve_optimal, DescentConfig};
use fermihedral_repro::fermihedral::{EncodingProblem, Objective};
use fermihedral_repro::fermion::fock::hamiltonian_matrix;
use fermihedral_repro::fermion::models::MolecularIntegrals;
use fermihedral_repro::fermion::MajoranaSum;
use fermihedral_repro::mathkit::eigen::eigh;
use fermihedral_repro::qsim::{eigenstate, estimate_energy, spectrum, NoiseModel, Statevector};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const H2_FCI: f64 = -1.851046;

fn h2() -> fermihedral_repro::fermion::FermionHamiltonian {
    MolecularIntegrals::h2_sto3g().to_hamiltonian(Default::default())
}

fn sat_encoding_for_h2() -> MajoranaEncoding {
    let monomials: Vec<_> = MajoranaSum::from_fermion(&h2())
        .weight_structure()
        .into_iter()
        .cloned()
        .collect();
    let outcome = solve_optimal(
        &EncodingProblem::full_sat(4, Objective::HamiltonianWeight(monomials)),
        &DescentConfig {
            solve_timeout: Some(Duration::from_secs(15)),
            total_timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        },
    );
    outcome
        .best
        .expect("H2 instance solves within seconds")
        .to_encoding("full-sat-h2")
}

#[test]
fn h2_spectra_agree_across_encodings_including_sat() {
    let h = h2();
    let reference = eigh(&hamiltonian_matrix(&h)).values;
    assert!((reference[0] - H2_FCI).abs() < 2e-4, "Fock FCI check");

    let sat = sat_encoding_for_h2();
    let report = validate(&sat);
    assert!(report.is_valid(), "{report:?}");
    assert!(report.xy_pair_condition);

    for mapped in [
        map_hamiltonian(&LinearEncoding::jordan_wigner(4), &h),
        map_hamiltonian(&LinearEncoding::bravyi_kitaev(4), &h),
        map_hamiltonian(&LinearEncoding::parity(4), &h),
        map_hamiltonian(&sat, &h),
    ] {
        assert!(mapped.is_hermitian(1e-9));
        let eigs = spectrum(&mapped).values;
        for (a, b) in reference.iter().zip(&eigs) {
            assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }
}

#[test]
fn sat_encoding_reduces_h2_cost_versus_bk() {
    let h = h2();
    let sat = sat_encoding_for_h2();
    let count = |enc: &dyn Fn() -> fermihedral_repro::pauli::PauliSum| {
        let mut mapped = enc();
        mapped.take_identity();
        let c = optimize(&trotter_circuit(&mapped, 1.0, 1));
        (c.counts().total(), c.counts().cnot, c.depth())
    };
    let (bk_total, bk_cnot, bk_depth) =
        count(&|| map_hamiltonian(&LinearEncoding::bravyi_kitaev(4), &h));
    let (sat_total, sat_cnot, sat_depth) = count(&|| map_hamiltonian(&sat, &h));
    // The paper's Table 6 shape: Full SAT strictly cheaper than BK on H2.
    assert!(sat_total < bk_total, "total {sat_total} vs {bk_total}");
    assert!(sat_cnot <= bk_cnot, "cnot {sat_cnot} vs {bk_cnot}");
    assert!(sat_depth <= bk_depth, "depth {sat_depth} vs {bk_depth}");
}

#[test]
fn trotter_circuit_approximates_exact_evolution() {
    let h = h2();
    let mut mapped = map_hamiltonian(&LinearEncoding::jordan_wigner(4), &h);
    let constant = mapped.take_identity();
    // 4 Trotter steps at t = 0.2 are quite accurate for H2.
    let circuit = optimize(&trotter_circuit(&mapped, 0.2, 4));
    let u = circuit_unitary(&circuit);
    let exact = evolution::exact_evolution(&mapped, 0.2);
    let err = (&u - &exact).frobenius_norm();
    assert!(err < 0.05, "Trotter error {err}");
    assert!(constant.im.abs() < 1e-9);
}

#[test]
fn ground_state_energy_survives_noiseless_measurement() {
    let h = h2();
    let mapped = map_hamiltonian(&LinearEncoding::bravyi_kitaev(4), &h);
    let psi = eigenstate(&mapped, 0);
    // Expectation check first (no shots).
    let direct = psi.expectation(&mapped).re;
    assert!((direct - H2_FCI).abs() < 2e-4);

    let mut rest = mapped.clone();
    rest.take_identity();
    let circuit = optimize(&trotter_circuit(&rest, 1.0, 1));
    let mut rng = StdRng::seed_from_u64(2024);
    let est = estimate_energy(
        &psi,
        &circuit,
        &mapped,
        4000,
        &NoiseModel::noiseless(),
        &mut rng,
    );
    // One Trotter step at t=1 is inexact, but an eigenstate's energy is
    // first-order protected; allow a loose-but-meaningful window.
    assert!(
        (est.energy - H2_FCI).abs() < 0.05,
        "measured {} vs {H2_FCI}",
        est.energy
    );
}

#[test]
fn noise_monotonically_degrades_h2_energy() {
    let h = h2();
    let mapped = map_hamiltonian(&LinearEncoding::bravyi_kitaev(4), &h);
    let psi = eigenstate(&mapped, 0);
    let mut rest = mapped.clone();
    rest.take_identity();
    let circuit = optimize(&trotter_circuit(&rest, 1.0, 1));
    let mut rng = StdRng::seed_from_u64(7);
    let mut drifts = Vec::new();
    for p2 in [1e-4, 3e-3, 3e-2] {
        let est = estimate_energy(
            &psi,
            &circuit,
            &mapped,
            3000,
            &NoiseModel::depolarizing(1e-4, p2),
            &mut rng,
        );
        drifts.push((est.energy - H2_FCI).abs());
    }
    // Strong noise must drift more than weak noise (the Figure 8 trend).
    assert!(drifts[2] > drifts[0], "drifts not increasing: {drifts:?}");
}

#[test]
fn vacuum_state_is_zero_electron_sector() {
    // Every H2 term ends in an annihilation operator, so the electronic
    // energy of the zero-electron state is exactly 0. Under a
    // vacuum-preserving encoding, |0…0⟩ *is* that state — so this checks
    // vacuum preservation end-to-end through the mapping.
    let h = h2();
    for enc_mapped in [
        map_hamiltonian(&LinearEncoding::jordan_wigner(4), &h),
        map_hamiltonian(&LinearEncoding::bravyi_kitaev(4), &h),
        map_hamiltonian(&sat_encoding_for_h2(), &h),
    ] {
        let vac = Statevector::zero(4);
        let e = vac.expectation(&enc_mapped);
        assert!(e.abs() < 1e-9, "vacuum energy should vanish, got {e}");
    }
}

//! Facade crate for the Fermihedral reproduction workspace.
//!
//! Re-exports every workspace crate under one root so the runnable examples
//! in `examples/` and the integration tests in `tests/` can depend on a
//! single package. Library users should depend on the individual crates
//! (`fermihedral`, `encodings`, `qsim`, …) directly.
//!
//! # Quick tour
//!
//! * [`pauli`] — Pauli strings, phases, and sums.
//! * [`sat`] — the CDCL SAT solver and CNF toolkit.
//! * [`fermion`] — second-quantized operators and benchmark Hamiltonians.
//! * [`encodings`] — Jordan-Wigner / parity / Bravyi-Kitaev / ternary-tree
//!   baselines, Hamiltonian mapping, and validation.
//! * [`fermihedral`] — the paper's contribution: SAT-optimal encodings.
//! * [`engine`] — the parallel portfolio compilation engine with incumbent
//!   sharing and a persistent solution cache.
//! * [`shard`] — multi-process lane sharding: a coordinator and worker
//!   processes bridged by the `sat::wire` clause/bound protocol.
//! * [`serve`] — the long-running compilation server: HTTP endpoints,
//!   request queueing and coalescing, deadlines, graceful shutdown.
//! * [`telemetry`] — structured tracing and metrics: span recorders, the
//!   process registry, Chrome-trace export, Prometheus exposition.
//! * [`jsonkit`] — the dependency-free JSON tree/writer/parser they share.
//! * [`circuit`] — Pauli-evolution circuit synthesis and optimization.
//! * [`qsim`] — noisy state-vector simulation and energy measurement.
//! * [`mathkit`] — the numeric kernel underneath all of the above.

pub use circuit;
pub use encodings;
pub use engine;
pub use fermihedral;
pub use fermion;
pub use jsonkit;
pub use mathkit;
pub use pauli;
pub use qsim;
pub use sat;
pub use serve;
pub use shard;
pub use telemetry;

//! Offline drop-in subset of the [`rand`] crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the small slice of the `rand 0.8` API its code actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic, seedable generator
//!   (xoshiro256++ seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`] over the integer
//!   and float types the workspace samples.
//!
//! Streams are *not* bit-compatible with the real `rand` crate; everything
//! in the workspace that depends on randomness is seeded and asserts
//! statistical properties only, never exact streams.
//!
//! [`rand`]: https://crates.io/crates/rand

pub mod rngs;

pub use rngs::StdRng;

/// Low-level source of random `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Identical seeds give
    /// identical streams.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (the `SampleRange` of the real
/// crate, restricted to `Range` and `RangeInclusive`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is ≤ span/2⁶⁴, irrelevant for
/// testing and annealing).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Two's-complement subtraction gives the span for signed
                // types as well.
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A value drawn uniformly over the type's domain (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value drawn uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
            let i = rng.gen_range(0u64..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values should appear");
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "p=0.25 gave {hits}/4000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(0).gen_range(5usize..5);
    }
}

//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value *tree* (shrinking is not
/// implemented); a strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.new_value(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

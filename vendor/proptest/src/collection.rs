//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification: an exact size or a half-open range of sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy generating a `Vec` of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// `proptest::collection::vec`: a `Vec` strategy with the given element
/// strategy and size specification (`usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

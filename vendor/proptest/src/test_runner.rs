//! Test-runner configuration and the deterministic generation RNG.

use rand::{RngCore, SeedableRng, StdRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    /// 256 cases, matching the real proptest default.
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// The RNG handed to strategies. Deterministic: seeded from the test
/// function's name, so every `cargo test` run generates the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// A generator seeded from `name` (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

//! Offline drop-in subset of the [`proptest`] crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the slice of the `proptest 1.x` surface its tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`strategy::Strategy`] with `prop_map`, numeric-range and tuple
//!   strategies, [`strategy::Just`],
//! * [`collection::vec`] with exact or ranged sizes,
//! * [`arbitrary::any`] for primitives.
//!
//! **No shrinking**: a failing case panics with the generated inputs via the
//! assertion message (every strategy value in this workspace is `Debug`-able
//! and small). Generation is deterministic — each test function runs the
//! same case sequence every time, so failures reproduce without persistence
//! files.
//!
//! [`proptest`]: https://crates.io/crates/proptest

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// ```no_run
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples(x in 1usize..10, (a, b) in (0u8..4, -1.0..1.0f64)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((-1.0..1.0).contains(&b));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..4, 3..7), w in crate::collection::vec(any::<bool>(), 5)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 5);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..5) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let s = (0u8..4).prop_map(|v| v as usize * 10);
        let mut rng = TestRng::deterministic("prop_map_transforms");
        for _ in 0..50 {
            let v = s.new_value(&mut rng);
            assert!(v % 10 == 0 && v < 40);
        }
    }

    #[test]
    fn just_returns_value() {
        let mut rng = TestRng::deterministic("just");
        assert_eq!(Just(17).new_value(&mut rng), 17);
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let s = 0u64..1_000_000;
        assert_eq!(s.clone().new_value(&mut a), s.new_value(&mut b));
    }
}

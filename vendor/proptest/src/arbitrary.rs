//! `any::<T>()` for primitives (`proptest::arbitrary`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;
use rand::{Rng, Standard};

/// Strategy returned by [`any`], sampling the type's whole domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// A strategy over all values of `T` (floats: uniform in `[0,1)`, unlike
/// real proptest — the workspace only calls this for `bool`).
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

//! Offline drop-in subset of the [`criterion`] benchmark harness.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the slice of the `criterion 0.5` API its benches use: [`Criterion`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Methodology is simplified but honest: each benchmark is warmed up, then
//! timed over enough iterations to fill a measurement window, and the mean,
//! minimum, and iteration count are printed. There are no HTML reports,
//! statistical regressions, or outlier analysis.
//!
//! Set `CRITERION_MEASURE_MS` to change the per-benchmark measurement
//! window (default 300 ms; CI can lower it to smoke-test benches quickly).
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

/// An opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing loop handed to the closure of
/// [`bench_function`](Criterion::bench_function).
pub struct Bencher {
    measure_window: Duration,
    /// Filled by [`iter`](Self::iter): (total elapsed, iterations, min per-iter).
    result: Option<(Duration, u64, Duration)>,
}

impl Bencher {
    /// Times `f` repeatedly until the measurement window is filled.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also gives a duration estimate).
        let warm_start = Instant::now();
        black_box(f());
        let estimate = warm_start.elapsed().max(Duration::from_nanos(1));

        let target_iters =
            (self.measure_window.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut min = Duration::MAX;
        let mut total = Duration::ZERO;
        for _ in 0..target_iters {
            let start = Instant::now();
            black_box(f());
            let d = start.elapsed();
            total += d;
            min = min.min(d);
        }
        self.result = Some((total, target_iters, min));
    }
}

/// The benchmark runner.
pub struct Criterion {
    measure_window: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let ms = std::env::var("CRITERION_MEASURE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            measure_window: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            measure_window: self.measure_window,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((total, iters, min)) => {
                let mean = total / iters.max(1) as u32;
                println!(
                    "{name:<50} mean {:>12?}  min {:>12?}  ({iters} iters)",
                    mean, min
                );
            }
            None => println!("{name:<50} (no iter() call)"),
        }
        self
    }
}

/// Declares a benchmark group: `criterion_group!(name, fn1, fn2, …)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(group1, group2, …)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("test/quick", |b| b.iter(|| black_box(2u64 + 2)));
    }

    #[test]
    fn runs_a_benchmark() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        let mut c = Criterion::default();
        quick(&mut c);
    }

    criterion_group!(group_under_test, quick);

    #[test]
    fn group_macro_compiles_and_runs() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        group_under_test();
    }
}
